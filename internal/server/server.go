// Package server is the MCFI execution service: a long-running,
// multi-tenant front end over the toolchain + runtime + VM stack.
// Jobs (a named workload or raw MiniC source) are compiled through a
// content-addressed build cache, then executed each in its own
// sandboxed vm.Process on a bounded worker pool with per-job
// instruction budgets and wall-clock timeouts. Admission is a
// depth-limited queue — overflow is refused immediately (HTTP 429) —
// and shutdown is a graceful drain: stop admitting, finish or cancel
// in-flight jobs, keep /metrics readable throughout.
//
// The point of the service (vs. the one-shot CLIs) is that MCFI's
// policy machinery keeps enforcing while untrusted code runs
// continuously: enforcement outcomes — clean exit, CFI violation,
// budget exhaustion, timeout — are first-class, distinguishable
// results in the API, and a violating job never poisons its worker.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcfi/internal/buildstore"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// Job statuses: every completed job carries exactly one.
const (
	StatusOK         = "ok"               // clean guest exit (see ExitCode)
	StatusCFI        = "cfi_violation"    // halted check transaction
	StatusFault      = "fault"            // non-CFI guest fault
	StatusTimeout    = "timeout"          // wall-clock deadline cancelled the run
	StatusCancelled  = "cancelled"        // caller went away or server drained
	StatusBudget     = "budget_exhausted" // instruction budget ran out
	StatusBuildError = "build_error"      // source failed to compile/link
)

// Submission errors.
var (
	// ErrBusy: the admission queue is full (backpressure; HTTP 429).
	ErrBusy = errors.New("server: queue full")
	// ErrDraining: the server no longer admits jobs (HTTP 503).
	ErrDraining = errors.New("server: draining")
)

// JobRequest is one execution request.
type JobRequest struct {
	// Workload names a built-in benchmark (workload.All); Work
	// overrides its iteration count (0 = reference input). Mutually
	// exclusive with Source.
	Workload string `json:"workload,omitempty"`
	Work     int    `json:"work,omitempty"`
	// Source is raw MiniC text compiled as one translation unit; Name
	// labels it in diagnostics (default "job").
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`
	// Baseline skips MCFI instrumentation; Profile selects 32/64
	// (default 64); Engine selects any vm.EngineNames() entry (default
	// threaded).
	Baseline bool   `json:"baseline,omitempty"`
	Profile  int    `json:"profile,omitempty"`
	Engine   string `json:"engine,omitempty"`
	// MaxInstr caps retired guest instructions (0 = server default);
	// TimeoutMs caps wall time (0 = server default).
	MaxInstr  int64 `json:"max_instr,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// FaultInfo describes a guest fault in a result.
type FaultInfo struct {
	Kind string `json:"kind"`
	PC   int64  `json:"pc"`
	Msg  string `json:"msg"`
}

// JobResult is the outcome of one completed job.
type JobResult struct {
	Status   string `json:"status"`
	ExitCode int64  `json:"exit_code"`
	Instret  int64  `json:"instret"`
	// StoreTier names where the job's image came from: "mem", "disk",
	// "remote", or "built" (compiled for this job). BuildCacheHit is
	// the legacy boolean view of the same fact (any tier but "built").
	StoreTier     string     `json:"store_tier,omitempty"`
	BuildCacheHit bool       `json:"build_cache_hit"`
	QueueMs       float64    `json:"queue_ms"`
	BuildMs       float64    `json:"build_ms"`
	RunMs         float64    `json:"run_ms"`
	Output        string     `json:"output,omitempty"`
	Error         string     `json:"error,omitempty"`
	Fault         *FaultInfo `json:"fault,omitempty"`
}

// Config sizes the service.
type Config struct {
	// Workers is the execution pool width (default GOMAXPROCS-ish 4).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running; overflow is
	// rejected with ErrBusy (default 2×Workers).
	QueueDepth int
	// CacheEntries bounds the in-memory store tier (default
	// buildstore.DefaultMemEntries).
	CacheEntries int
	// StoreDir, when set, adds a persistent on-disk store tier rooted
	// there: images and libc objects survive restarts, and concurrent
	// server processes may share the directory.
	StoreDir string
	// RemoteStore, when set, adds a remote store tier: the base URL of
	// a peer mcfi-serve (or shared cache) whose /v1/store endpoint is
	// consulted after mem and disk, and published to on fresh builds
	// (publishing requires StoreSecret).
	RemoteStore string
	// StoreSecret is the shared cluster secret that authenticates the
	// /v1/store write plane: PUTs this server accepts, and blobs this
	// server fetches from or publishes to RemoteStore, carry an
	// HMAC binding payload to key. Empty means the store surface is
	// read-only: all incoming PUTs are refused, nothing is published to
	// the peer, and fetched blobs are integrity-checked only.
	StoreSecret string
	// DefaultMaxInstr is the per-job instruction budget when a request
	// does not set one (default 2e9). <0 disables the default.
	DefaultMaxInstr int64
	// DefaultTimeout is the per-job wall-clock limit when a request
	// does not set one (default 60s).
	DefaultTimeout time.Duration
	// MaxOutputBytes truncates captured guest output (default 1 MiB).
	MaxOutputBytes int64
	// BuildJobs bounds per-build compile concurrency (default 1: the
	// pool itself provides the parallelism).
	BuildJobs int
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultMaxInstr == 0 {
		c.DefaultMaxInstr = 2_000_000_000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 1 << 20
	}
	if c.BuildJobs <= 0 {
		c.BuildJobs = 1
	}
}

// job is one queued request plus its completion signal.
type job struct {
	req      JobRequest
	ctx      context.Context
	queuedAt time.Time
	res      JobResult
	done     chan struct{}
}

// Server is one running MCFI execution service.
type Server struct {
	cfg   Config
	store *buildstore.Tiered
	disk  *buildstore.Disk // persistent tier, also served at /v1/store
	queue chan *job
	start time.Time

	// admitMu orders Submit's enqueue against Drain's close(queue):
	// submitters hold it shared for the draining-check + send; Drain
	// takes it exclusively to flip draining, so no send can race the
	// close.
	admitMu  sync.RWMutex
	draining bool

	// force cancels every in-flight guest when Drain's grace period
	// expires.
	force     context.Context
	forceStop context.CancelFunc

	workers sync.WaitGroup
	busy    atomic.Int64

	// Metrics counters (lock-free).
	accepted, completed, rejected          atomic.Int64
	ok, cfi, faults, timeouts, cancelled   atomic.Int64
	budget, buildErrs                      atomic.Int64
	instret, execNanos                     atomic.Int64
	checkExecs, checkHalts, vHits, vMisses atomic.Int64
	jitBlocks, jitCompileNanos             atomic.Int64
	jitBlockRuns, jitColdSteps             atomic.Int64
}

// New starts a server's worker pool, assembling the build store from
// the config: always an in-memory tier, plus a disk tier when StoreDir
// is set and a remote tier when RemoteStore is set. It fails only when
// the store directory cannot be opened. Callers must eventually Drain.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	tiers := []buildstore.Store{buildstore.NewMem(cfg.CacheEntries)}
	var disk *buildstore.Disk
	if cfg.StoreDir != "" {
		d, err := buildstore.OpenDisk(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		disk = d
		tiers = append(tiers, d)
	}
	if cfg.RemoteStore != "" {
		tiers = append(tiers, buildstore.NewRemote(cfg.RemoteStore, nil, cfg.StoreSecret))
	}
	s := &Server{
		cfg:   cfg,
		store: buildstore.NewTiered(tiers...),
		disk:  disk,
		queue: make(chan *job, cfg.QueueDepth),
		start: time.Now(),
	}
	s.force, s.forceStop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the server's build store (metrics, tests, warm-up).
func (s *Server) Store() *buildstore.Tiered { return s.store }

// Submit admits a job and blocks until it completes. It returns
// ErrBusy when the queue is full and ErrDraining after Drain started;
// every other outcome (including CFI violations and faults) is a
// JobResult, not an error.
func (s *Server) Submit(ctx context.Context, req JobRequest) (JobResult, error) {
	j := &job{req: req, ctx: ctx, queuedAt: time.Now(), done: make(chan struct{})}
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		return JobResult{}, ErrDraining
	}
	select {
	case s.queue <- j:
		s.admitMu.RUnlock()
		s.accepted.Add(1)
	default:
		s.admitMu.RUnlock()
		s.rejected.Add(1)
		return JobResult{}, ErrBusy
	}
	<-j.done
	return j.res, nil
}

// Drain stops admission, waits for queued and in-flight jobs to finish,
// and — if ctx expires first — cancels every running guest, then waits
// for the (now prompt) pool shutdown. Always returns with the pool
// stopped.
func (s *Server) Drain(ctx context.Context) {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		s.workers.Wait()
		return
	}
	s.draining = true
	s.admitMu.Unlock()
	// No submitter can be inside a send now; workers exit after the
	// queue empties.
	close(s.queue)
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.forceStop() // cancel in-flight guests
		<-done
	}
	// Pool stopped: release the store (flushes the disk tier's journal
	// handle; the directory stays valid for the next process).
	s.store.Close()
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.busy.Add(1)
		j.res = s.runJob(j)
		s.recordResult(j.res)
		s.busy.Add(-1)
		close(j.done)
	}
}

// limitWriter truncates guest output host-side past a byte budget (the
// guest's writes still succeed — a tenant cannot detect or exploit the
// cap).
type limitWriter struct {
	buf []byte
	max int64
}

func (w *limitWriter) Write(p []byte) (int, error) {
	if int64(len(w.buf)) < w.max {
		keep := w.max - int64(len(w.buf))
		if keep > int64(len(p)) {
			keep = int64(len(p))
		}
		w.buf = append(w.buf, p[:keep]...)
	}
	return len(p), nil
}

// resolve turns a request into buildable sources plus the builder for
// its flavor.
func (s *Server) resolve(req JobRequest) (*toolchain.Builder, toolchain.Source, error) {
	var src toolchain.Source
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, src, fmt.Errorf("request sets both workload and source")
	case req.Workload != "":
		w, ok := workload.ByName(req.Workload)
		if !ok {
			return nil, src, fmt.Errorf("unknown workload %q", req.Workload)
		}
		src = toolchain.Source{Name: w.Name, Text: w.SourceWithWork(req.Work)}
	case req.Source != "":
		name := req.Name
		if name == "" {
			name = "job"
		}
		src = toolchain.Source{Name: name, Text: req.Source}
	default:
		return nil, src, fmt.Errorf("request needs a workload name or source text")
	}
	profile := visa.Profile64
	switch req.Profile {
	case 0, 64:
	case 32:
		profile = visa.Profile32
	default:
		return nil, src, fmt.Errorf("unknown profile %d (want 32 or 64)", req.Profile)
	}
	b := toolchain.New(
		toolchain.WithProfile(profile),
		toolchain.WithInstrument(!req.Baseline),
		toolchain.WithJobs(s.cfg.BuildJobs),
		toolchain.WithStore(s.store),
	)
	return b, src, nil
}

// runJob executes one job end to end: cache-keyed build, bounded run,
// outcome classification. It never panics the worker: a hostile or
// violating guest is torn down inside its own vm.Process.
func (s *Server) runJob(j *job) JobResult {
	res := JobResult{QueueMs: ms(time.Since(j.queuedAt))}
	if err := j.ctx.Err(); err != nil {
		res.Status, res.Error = StatusCancelled, "cancelled before execution"
		return res
	}

	b, src, err := s.resolve(j.req)
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}
	engine, err := vm.ParseEngineDefault(j.req.Engine, vm.EngineThreaded)
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}

	t0 := time.Now()
	img, tier, err := b.BuildTiered(src)
	res.BuildMs = ms(time.Since(t0))
	res.StoreTier = string(tier)
	res.BuildCacheHit = tier != buildstore.TierBuilt
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}

	out := &limitWriter{max: s.cfg.MaxOutputBytes}
	rt, err := mrt.New(img, mrt.Options{Out: out, Engine: engine})
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}

	timeout := s.cfg.DefaultTimeout
	if j.req.TimeoutMs > 0 {
		timeout = time.Duration(j.req.TimeoutMs) * time.Millisecond
	}
	maxInstr := s.cfg.DefaultMaxInstr
	if j.req.MaxInstr > 0 {
		maxInstr = j.req.MaxInstr
	}
	if maxInstr < 0 {
		maxInstr = 0
	}

	runCtx, cancel := context.WithTimeout(j.ctx, timeout)
	watchDone := make(chan struct{})
	ranDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-s.force.Done():
			cancel() // drain deadline: stop this guest now
		case <-ranDone:
		}
	}()

	t1 := time.Now()
	code, runErr := rt.RunContext(runCtx, maxInstr)
	execDur := time.Since(t1)
	close(ranDone)
	<-watchDone
	cancel()

	res.RunMs = ms(execDur)
	res.Instret = rt.Instret()
	res.Output = string(out.buf)
	s.instret.Add(res.Instret)
	s.execNanos.Add(execDur.Nanoseconds())
	st := rt.CheckStats()
	s.checkExecs.Add(st.Execs)
	s.checkHalts.Add(st.Halts)
	s.vHits.Add(st.VerdictHits)
	s.vMisses.Add(st.VerdictMisses)
	s.jitBlocks.Add(st.JITBlocks)
	s.jitCompileNanos.Add(st.JITCompileNanos)
	s.jitBlockRuns.Add(st.JITBlockRuns)
	s.jitColdSteps.Add(st.JITColdSteps)

	var fault *vm.Fault
	switch {
	case runErr == nil:
		res.Status, res.ExitCode = StatusOK, code
	case errors.Is(runErr, vm.ErrCancelled):
		if errors.Is(runCtx.Err(), context.DeadlineExceeded) {
			res.Status = StatusTimeout
			res.Error = fmt.Sprintf("wall-clock timeout after %v", timeout)
		} else {
			res.Status, res.Error = StatusCancelled, "cancelled"
		}
	case errors.Is(runErr, vm.ErrBudget):
		res.Status = StatusBudget
		res.Error = runErr.Error()
	case errors.As(runErr, &fault):
		res.Fault = &FaultInfo{Kind: fault.Kind.String(), PC: fault.PC, Msg: fault.Msg}
		if fault.Kind == vm.FaultCFI {
			res.Status = StatusCFI
		} else {
			res.Status = StatusFault
		}
		res.Error = fault.Error()
	default:
		res.Status, res.Error = StatusFault, runErr.Error()
	}
	return res
}

func (s *Server) recordResult(res JobResult) {
	s.completed.Add(1)
	switch res.Status {
	case StatusOK:
		s.ok.Add(1)
	case StatusCFI:
		s.cfi.Add(1)
	case StatusFault:
		s.faults.Add(1)
	case StatusTimeout:
		s.timeouts.Add(1)
	case StatusCancelled:
		s.cancelled.Add(1)
	case StatusBudget:
		s.budget.Add(1)
	case StatusBuildError:
		s.buildErrs.Add(1)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// --- metrics ---

// Metrics is the /metrics document.
type Metrics struct {
	UptimeSecs float64            `json:"uptime_secs"`
	Draining   bool               `json:"draining"`
	Jobs       JobCounts          `json:"jobs"`
	Queue      QueueState         `json:"queue"`
	BuildStore buildstore.Metrics `json:"build_store"`
	Exec       ExecMetrics        `json:"exec"`
}

// JobCounts breaks down admission and outcomes.
type JobCounts struct {
	Accepted        int64 `json:"accepted"`
	Completed       int64 `json:"completed"`
	Rejected        int64 `json:"rejected"`
	Ok              int64 `json:"ok"`
	CFIViolations   int64 `json:"cfi_violations"`
	Faults          int64 `json:"faults"`
	Timeouts        int64 `json:"timeouts"`
	Cancelled       int64 `json:"cancelled"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	BuildErrors     int64 `json:"build_errors"`
}

// QueueState reports live backpressure.
type QueueState struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	Busy     int `json:"busy"`
}

// ExecMetrics aggregates guest execution across all completed jobs.
type ExecMetrics struct {
	GuestInstret  int64   `json:"guest_instret"`
	ExecSecs      float64 `json:"exec_secs"`
	MinstrPerSec  float64 `json:"minstr_per_sec"`
	CheckExecs    int64   `json:"check_execs"`
	CheckHalts    int64   `json:"check_halts"`
	VerdictHits   int64   `json:"verdict_hits"`
	VerdictMisses int64   `json:"verdict_misses"`
	// Block-compiler counters, aggregated across jobs that ran the
	// blockjit engine (zero otherwise). JITHotRatio is the fraction of
	// dispatches served by compiled blocks.
	JITBlocks      int64   `json:"jit_blocks_compiled"`
	JITCompileSecs float64 `json:"jit_compile_secs"`
	JITBlockRuns   int64   `json:"jit_block_runs"`
	JITColdSteps   int64   `json:"jit_cold_steps"`
	JITHotRatio    float64 `json:"jit_hot_ratio"`
}

// MetricsSnapshot assembles the live metrics document.
func (s *Server) MetricsSnapshot() Metrics {
	execSecs := float64(s.execNanos.Load()) / 1e9
	instret := s.instret.Load()
	m := Metrics{
		UptimeSecs: time.Since(s.start).Seconds(),
		Draining:   s.Draining(),
		Jobs: JobCounts{
			Accepted:        s.accepted.Load(),
			Completed:       s.completed.Load(),
			Rejected:        s.rejected.Load(),
			Ok:              s.ok.Load(),
			CFIViolations:   s.cfi.Load(),
			Faults:          s.faults.Load(),
			Timeouts:        s.timeouts.Load(),
			Cancelled:       s.cancelled.Load(),
			BudgetExhausted: s.budget.Load(),
			BuildErrors:     s.buildErrs.Load(),
		},
		Queue: QueueState{
			Depth:    len(s.queue),
			Capacity: s.cfg.QueueDepth,
			Workers:  s.cfg.Workers,
			Busy:     int(s.busy.Load()),
		},
		BuildStore: s.store.Metrics(),
		Exec: ExecMetrics{
			GuestInstret:   instret,
			ExecSecs:       execSecs,
			CheckExecs:     s.checkExecs.Load(),
			CheckHalts:     s.checkHalts.Load(),
			VerdictHits:    s.vHits.Load(),
			VerdictMisses:  s.vMisses.Load(),
			JITBlocks:      s.jitBlocks.Load(),
			JITCompileSecs: float64(s.jitCompileNanos.Load()) / 1e9,
			JITBlockRuns:   s.jitBlockRuns.Load(),
			JITColdSteps:   s.jitColdSteps.Load(),
		},
	}
	if execSecs > 0 {
		m.Exec.MinstrPerSec = float64(instret) / execSecs / 1e6
	}
	if d := m.Exec.JITBlockRuns + m.Exec.JITColdSteps; d > 0 {
		m.Exec.JITHotRatio = float64(m.Exec.JITBlockRuns) / float64(d)
	}
	return m
}

// --- HTTP surface ---

// Handler returns the service mux. The surface is versioned under
// /v1/ — POST /v1/run, GET /v1/healthz, GET /v1/metrics, and the
// store protocol at /v1/store/{key} (GET/HEAD/PUT of sealed blobs,
// backed by the disk tier) — with the original unversioned routes
// kept as aliases so existing clients keep working.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.Handle("/v1/store/", s.storeHandler())
	// Legacy (pre-/v1) aliases.
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// storeHandler serves the replica-sharing protocol from the disk tier;
// without one (no -store-dir) there is nothing persistent to share.
// Writes are gated on the shared secret (see Config.StoreSecret):
// without it the surface is read-only, so an open serve port cannot be
// used to publish a hostile artifact under a victim fingerprint.
func (s *Server) storeHandler() http.Handler {
	if s.disk == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "no persistent store configured (start with -store-dir)", http.StatusNotFound)
		})
	}
	return buildstore.Handler(s.disk, s.cfg.StoreSecret)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	res, err := s.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrBusy):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.MetricsSnapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
