package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcfi/internal/mrt"
	"mcfi/internal/obs"
	"mcfi/internal/toolchain"
	"mcfi/internal/vm"
)

// hijackSrc is the SNIPPETS step-1 attack: a function pointer of one
// signature is overwritten (via a cast) with a function of another
// signature. MCFI's indirect-call check must halt the transfer — the
// equivalence classes differ — so the verdict is a CFI violation with
// check kind "indirect".
const hijackSrc = `
int execve_like(char *path, char **argv) {
	puts("  !! spawning a shell (execve reached)");
	return 0;
}
int (*libc_ref)(char *, char **) = execve_like;
void (*handler)(void);
int main(void) {
	handler = (void (*)(void))execve_like;
	handler();
	return 0;
}`

func getTrace(t *testing.T, base, id string) (obs.Trace, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr obs.Trace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, resp.StatusCode
}

func spanByName(tr obs.Trace, name string) *obs.Span {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// TestTraceSpansEndToEnd: a sampled job's result names a trace whose
// span set covers every phase with non-zero durations, and the phase
// summary on the result agrees with the span taxonomy.
func TestTraceSpansEndToEnd(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 8})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, _ := postRun(t, ts.URL, JobRequest{Source: helloSrc, Name: "hello"})
	if res == nil || res.Status != StatusOK {
		t.Fatalf("job failed: %+v", res)
	}
	if res.TraceID == "" {
		t.Fatal("sampled job returned no trace ID")
	}
	if res.Phases == nil {
		t.Fatal("job result has no phase summary")
	}
	if res.Phases.RunMs <= 0 {
		t.Errorf("phase summary run_ms = %v, want > 0", res.Phases.RunMs)
	}

	tr, code := getTrace(t, ts.URL, res.TraceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s = %d", res.TraceID, code)
	}
	if tr.ID != res.TraceID {
		t.Errorf("trace id = %q, want %q", tr.ID, res.TraceID)
	}
	for _, name := range []string{obs.SpanAdmission, obs.SpanQueue, obs.SpanBuild, obs.SpanRun} {
		sp := spanByName(tr, name)
		if sp == nil {
			t.Errorf("trace missing %q span (have %d spans)", name, len(tr.Spans))
			continue
		}
		if sp.DurNs <= 0 {
			t.Errorf("%q span duration = %dns, want > 0", name, sp.DurNs)
		}
		if sp.Trace != res.TraceID {
			t.Errorf("%q span trace = %q, want %q", name, sp.Trace, res.TraceID)
		}
	}
	// A cold build compiles and links from source: the build span must
	// carry the sub-phase spans, and the run span the engine verdict.
	if sp := spanByName(tr, obs.SpanCompile); sp == nil || sp.DurNs <= 0 {
		t.Errorf("cold build missing compile span: %+v", sp)
	}
	if sp := spanByName(tr, obs.SpanLink); sp == nil || sp.DurNs <= 0 {
		t.Errorf("cold build missing link span: %+v", sp)
	}
	if sp := spanByName(tr, obs.SpanRun); sp != nil {
		if sp.Attrs["status"] != StatusOK || sp.Attrs["engine"] == "" {
			t.Errorf("run span attrs = %v", sp.Attrs)
		}
	}

	st := s.Tracer().Stats()
	if st.Sampled == 0 || st.Spans == 0 || st.Retained == 0 {
		t.Errorf("recorder stats = %+v, want all non-zero", st)
	}
}

// TestTraceSamplingOff: -trace-sample=0 (Config.TraceSample < 0) turns
// tracing off — no trace ID on results, nothing retrievable.
func TestTraceSamplingOff(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4, TraceSample: -1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, _ := postRun(t, ts.URL, JobRequest{Source: helloSrc, Name: "hello"})
	if res == nil || res.Status != StatusOK {
		t.Fatalf("job failed: %+v", res)
	}
	if res.TraceID != "" {
		t.Errorf("unsampled job returned trace ID %q", res.TraceID)
	}
	if _, code := getTrace(t, ts.URL, "deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Errorf("GET on unsampled server = %d, want 404", code)
	}
	if st := s.Tracer().Stats(); st.Spans != 0 {
		t.Errorf("recorder holds %d spans with sampling off", st.Spans)
	}
}

// TestClusterTraceMerged is the satellite requirement: a job submitted
// through the non-owning replica carries ONE trace ID across both
// replicas, and GET /v1/trace/{id} on the owner returns the merged
// span set — the owner's execution spans plus the proxy's relay span.
func TestClusterTraceMerged(t *testing.T) {
	srvs, _ := newCluster(t, 2, nil)
	jr := JobRequest{Source: helloSrc, Name: "hello"}

	owner, ok := srvs[0].ownerOf(jr)
	if !ok {
		t.Fatal("no owner resolved")
	}
	var proxySrv *Server
	for _, s := range srvs {
		if s.self != owner {
			proxySrv = s
		}
	}

	res, _ := postRun(t, proxySrv.self, jr)
	if res == nil || res.Status != StatusOK || !res.Proxied {
		t.Fatalf("proxied run: %+v", res)
	}
	if res.TraceID == "" {
		t.Fatal("proxied job returned no trace ID")
	}

	// The relay span is pushed to the owner asynchronously; poll.
	var tr obs.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		var code int
		tr, code = getTrace(t, owner, res.TraceID)
		if code == http.StatusOK && spanByName(tr, obs.SpanRelay) != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner trace never merged relay span: code=%d spans=%+v", code, tr.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, name := range []string{obs.SpanAdmission, obs.SpanQueue, obs.SpanBuild,
		obs.SpanRun, obs.SpanRelay} {
		sp := spanByName(tr, name)
		if sp == nil {
			t.Errorf("merged trace missing %q span", name)
			continue
		}
		if sp.Trace != res.TraceID {
			t.Errorf("%q span trace = %q, want %q", name, sp.Trace, res.TraceID)
		}
		if sp.DurNs <= 0 {
			t.Errorf("%q span duration = %dns, want > 0", name, sp.DurNs)
		}
		want := owner
		if name == obs.SpanRelay {
			want = proxySrv.self
		}
		if sp.Replica != want {
			t.Errorf("%q span replica = %q, want %q", name, sp.Replica, want)
		}
	}

	// The proxy's own ring holds its relay span under the same ID.
	ptr, ok := proxySrv.Tracer().Get(res.TraceID)
	if !ok || spanByName(ptr, obs.SpanRelay) == nil {
		t.Errorf("proxy ring missing relay span for %s", res.TraceID)
	}
}

// TestAuditMatchesDirectVerdict is the satellite requirement: the
// step-1 same-signature hijack driven through the server produces an
// audit record whose faulting PC and check kind match the fault a
// direct (no server) run of the same build reports.
func TestAuditMatchesDirectVerdict(t *testing.T) {
	// Direct run: same builder flavor as the server's (instrumented,
	// Profile64), same default engine.
	b := toolchain.New(toolchain.WithInstrumentation())
	src := toolchain.Source{Name: "hijack", Text: hijackSrc}
	img, err := b.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mrt.New(img, mrt.Options{Engine: vm.EngineThreaded})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run(10_000_000)
	var direct *vm.Fault
	if !errors.As(runErr, &direct) || direct.Kind != vm.FaultCFI {
		t.Fatalf("direct run fault = %v, want CFI", runErr)
	}
	if direct.Check != vm.CheckIndirect {
		t.Fatalf("direct fault check = %v, want indirect", direct.Check)
	}

	// Every engine agrees on the verdict coordinates.
	for _, eng := range vm.Engines() {
		rt, err := mrt.New(img, mrt.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := rt.Run(10_000_000)
		var f *vm.Fault
		if !errors.As(runErr, &f) || f.Kind != vm.FaultCFI {
			t.Fatalf("%s: fault = %v, want CFI", eng, runErr)
		}
		if f.PC != direct.PC || f.Check != direct.Check || f.Target != direct.Target {
			t.Errorf("%s: fault (pc=%#x check=%v target=%#x), want (pc=%#x check=%v target=%#x)",
				eng, f.PC, f.Check, f.Target, direct.PC, direct.Check, direct.Target)
		}
	}

	// Server run with an NDJSON sink attached.
	var sink bytes.Buffer
	s := newTest(t, Config{Workers: 1, QueueDepth: 4, AuditSink: &sink})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, _ := postRun(t, ts.URL, JobRequest{Source: hijackSrc, Name: "hijack", Tenant: "attacker"})
	if res == nil || res.Status != StatusCFI {
		t.Fatalf("server verdict = %+v, want CFI violation", res)
	}
	if res.Output != "" {
		t.Fatalf("hijacked function ran before the halt: %q", res.Output)
	}

	recs := s.Audit().Records()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.PC != direct.PC {
		t.Errorf("audit PC = %#x, want direct verdict PC %#x", rec.PC, direct.PC)
	}
	if rec.Check != "indirect" {
		t.Errorf("audit check = %q, want %q", rec.Check, "indirect")
	}
	if rec.Target != direct.Target {
		t.Errorf("audit target = %#x, want %#x", rec.Target, direct.Target)
	}
	if rec.Tenant != "attacker" || rec.Job != "hijack" {
		t.Errorf("audit identity = tenant %q job %q", rec.Tenant, rec.Job)
	}
	if rec.Engine != vm.EngineThreaded.String() {
		t.Errorf("audit engine = %q", rec.Engine)
	}
	if rec.Fingerprint == "" || rec.Trace != res.TraceID || rec.Seq != 1 {
		t.Errorf("audit record incomplete: %+v", rec)
	}

	// /v1/audit serves the same record.
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page AuditPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Records) != 1 || page.Records[0].PC != direct.PC {
		t.Errorf("audit page = total %d, %d records", page.Total, len(page.Records))
	}

	// The sink got one parseable NDJSON line with the same coordinates.
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(sink.Bytes()))
	for sc.Scan() {
		lines++
		var fromSink obs.AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &fromSink); err != nil {
			t.Fatalf("sink line %d not JSON: %v", lines, err)
		}
		if fromSink.PC != direct.PC || fromSink.Check != "indirect" {
			t.Errorf("sink record = %+v", fromSink)
		}
	}
	if lines != 1 {
		t.Errorf("sink lines = %d, want 1", lines)
	}
}

// TestPromExposition: ?format=prom renders the metrics snapshot as
// well-formed Prometheus text from the same counters as the JSON form.
func TestPromExposition(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if res, _ := postRun(t, ts.URL, JobRequest{Source: helloSrc, Name: "hello"}); res == nil || res.Status != StatusOK {
		t.Fatalf("seed job failed: %+v", res)
	}
	if res, _ := postRun(t, ts.URL, JobRequest{Source: smashSrc, Name: "smash"}); res == nil || res.Status != StatusCFI {
		t.Fatalf("seed violation failed: %+v", res)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	types := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Errorf("malformed TYPE line: %q", line)
			continue
		}
		if types[fields[2]] {
			t.Errorf("duplicate TYPE for family %s", fields[2])
		}
		types[fields[2]] = true
	}
	for _, want := range []string{
		`mcfi_jobs_total{outcome="ok"} 1`,
		`mcfi_jobs_total{outcome="cfi_violation"} 1`,
		"mcfi_check_halts_total 1",
		"mcfi_audit_records_total 1",
		`mcfi_run_seconds_bucket{engine="threaded",le="+Inf"} 2`,
		"mcfi_run_seconds_count",
		"mcfi_queue_wait_seconds_sum",
		`mcfi_build_seconds_bucket{le="+Inf",tier="built"} 2`,
		"mcfi_trace_sample_rate 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(body, "NaN") || strings.Contains(body, "+Inf\n") {
		t.Errorf("exposition contains non-finite values")
	}
}

// TestHealthzBody: /v1/healthz reports identity while up and flips to
// 503 + draining once Drain begins.
func TestHealthzBody(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (Health, int) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h, resp.StatusCode
	}

	h, code := get()
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Version != Version || h.Engine != vm.EngineThreaded.String() ||
		h.Draining || h.Workers < 1 {
		t.Errorf("health body = %+v", h)
	}

	drain(t, s)
	h, code = get()
	if code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Errorf("post-drain health = %d %+v", code, h)
	}
}
