package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lateHandler lets a replica's HTTP endpoint exist (with a URL) before
// the Server that backs it is constructed — Config.Self needs the URL.
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newCluster starts n replicas that route to each other. Callers get
// the servers, their endpoints, and the shared peer URL list.
func newCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []*httptest.Server) {
	t.Helper()
	eps := make([]*httptest.Server, n)
	lhs := make([]*lateHandler, n)
	urls := make([]string, n)
	for i := range eps {
		lhs[i] = &lateHandler{}
		eps[i] = httptest.NewServer(lhs[i])
		urls[i] = eps[i].URL
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		cfg := Config{Workers: 2, QueueDepth: 64, Peers: urls, Self: urls[i]}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srvs[i] = newTest(t, cfg)
		lhs[i].set(srvs[i].Handler())
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			drain(t, s)
		}
		for _, ep := range eps {
			ep.Close()
		}
	})
	return srvs, eps
}

func postRun(t *testing.T, url string, jr JobRequest) (*JobResult, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(jr)
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res, resp
}

// verdict is the portion of a JobResult that must be identical no
// matter which replica served the job (timing and cache-tier fields
// legitimately vary).
func verdict(r *JobResult) string {
	b, _ := json.Marshal(map[string]any{
		"status": r.Status, "exit": r.ExitCode, "instret": r.Instret,
		"output": r.Output, "error": r.Error, "fault": r.Fault,
	})
	return string(b)
}

// TestClusterProxyByteIdenticalVerdicts is the satellite requirement:
// a job submitted to the non-owning replica is proxied one hop and
// returns the same verdict bytes as the same job run on its owner.
func TestClusterProxyByteIdenticalVerdicts(t *testing.T) {
	srvs, _ := newCluster(t, 2, nil)
	jr := JobRequest{Source: helloSrc, Name: "hello"}

	owner, ok := srvs[0].ownerOf(jr)
	if !ok {
		t.Fatal("no owner resolved")
	}
	var ownerSrv, otherSrv *Server
	for _, s := range srvs {
		if s.self == owner {
			ownerSrv = s
		} else {
			otherSrv = s
		}
	}
	if ownerSrv == nil || otherSrv == nil {
		t.Fatalf("owner %q not among replicas", owner)
	}

	direct, _ := postRun(t, ownerSrv.self, jr)
	if direct == nil || direct.Status != StatusOK {
		t.Fatalf("direct run failed: %+v", direct)
	}
	if direct.Proxied {
		t.Error("owner-served job marked proxied")
	}

	proxied, _ := postRun(t, otherSrv.self, jr)
	if proxied == nil {
		t.Fatal("proxied run failed")
	}
	if !proxied.Proxied {
		t.Error("routed job not marked proxied")
	}
	if proxied.Replica != owner {
		t.Errorf("routed job executed on %q, want owner %q", proxied.Replica, owner)
	}
	if verdict(direct) != verdict(proxied) {
		t.Errorf("verdicts differ:\n direct : %s\n proxied: %s", verdict(direct), verdict(proxied))
	}

	// A CFI violation's verdict must survive the hop too.
	cfiReq := JobRequest{Source: smashSrc, Name: "smash"}
	cfiOwner, _ := srvs[0].ownerOf(cfiReq)
	var nonOwner *Server
	for _, s := range srvs {
		if s.self != cfiOwner {
			nonOwner = s
		}
	}
	a, _ := postRun(t, cfiOwner, cfiReq)
	b, _ := postRun(t, nonOwner.self, cfiReq)
	if a == nil || b == nil || a.Status != StatusCFI {
		t.Fatalf("cfi run: direct=%+v proxied=%+v", a, b)
	}
	if verdict(a) != verdict(b) {
		t.Errorf("cfi verdicts differ:\n direct : %s\n proxied: %s", verdict(a), verdict(b))
	}

	mo := ownerSrv.MetricsSnapshot()
	mn := otherSrv.MetricsSnapshot()
	if mo.Cluster == nil || mn.Cluster == nil {
		t.Fatal("cluster metrics missing")
	}
	if mn.Cluster.ProxiedOut == 0 || mo.Cluster.ProxiedIn == 0 {
		t.Errorf("proxy counters: out=%d in=%d, want both > 0",
			mn.Cluster.ProxiedOut, mo.Cluster.ProxiedIn)
	}
}

// TestClusterProxyFallbackLocal: when the owning replica is down, the
// receiving replica executes locally instead of failing the job.
func TestClusterProxyFallbackLocal(t *testing.T) {
	srvs, eps := newCluster(t, 2, nil)
	jr := JobRequest{Source: helloSrc, Name: "hello"}
	owner, _ := srvs[0].ownerOf(jr)
	var ownerIdx, otherIdx int
	for i, s := range srvs {
		if s.self == owner {
			ownerIdx = i
		} else {
			otherIdx = i
		}
	}
	// Kill the owner's endpoint (but keep its Server for Cleanup).
	eps[ownerIdx].Close()

	res, _ := postRun(t, srvs[otherIdx].self, jr)
	if res == nil || res.Status != StatusOK {
		t.Fatalf("fallback run failed: %+v", res)
	}
	if res.Replica != srvs[otherIdx].self {
		t.Errorf("fallback executed on %q, want local %q", res.Replica, srvs[otherIdx].self)
	}
	if res.Proxied {
		t.Error("fallback job marked proxied")
	}
	m := srvs[otherIdx].MetricsSnapshot()
	if m.Cluster.ProxyFallbacks == 0 {
		t.Error("proxy_fallbacks not counted")
	}
	// The dead peer is now in cooldown: a second job goes straight local.
	res2, _ := postRun(t, srvs[otherIdx].self, jr)
	if res2 == nil || res2.Replica != srvs[otherIdx].self {
		t.Fatalf("cooldown job: %+v", res2)
	}
}

// TestBatchEndpoint: N jobs in one round trip, results in request
// order, batch counters on /metrics.
func TestBatchEndpoint(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 32})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jobs []JobRequest
	for i := 0; i < 6; i++ {
		jobs = append(jobs, JobRequest{
			Source: fmt.Sprintf("int main(void){ printf(\"j%%d\\n\", %d); return %d; }", i, i),
			Name:   fmt.Sprintf("j%d", i),
		})
	}
	body, _ := json.Marshal(BatchRequest{Tenant: "batcher", Jobs: jobs})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %s", resp.Status)
	}
	var bresp BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Count != 6 || bresp.Rejected != 0 || len(bresp.Results) != 6 {
		t.Fatalf("batch response: %+v", bresp)
	}
	for i, r := range bresp.Results {
		if r.Status != StatusOK || r.ExitCode != int64(i) || r.Tenant != "batcher" {
			t.Errorf("result %d out of order or wrong: %+v", i, r)
		}
	}
	m := s.MetricsSnapshot()
	if m.Jobs.Batches != 1 || m.Jobs.BatchJobs != 6 {
		t.Errorf("batch counters: %d batches, %d jobs", m.Jobs.Batches, m.Jobs.BatchJobs)
	}
}

// TestBatchAtomicRejection: a batch that cannot be admitted whole is
// refused whole — rejected results, Retry-After, nothing executed.
func TestBatchAtomicRejection(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 2})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jobs []JobRequest
	for i := 0; i < 8; i++ { // exceeds QueueDepth 2
		jobs = append(jobs, JobRequest{Source: helloSrc, Name: "h"})
	}
	body, _ := json.Marshal(BatchRequest{Jobs: jobs})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %s, want 200 with rejected results", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("rejected batch missing Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q not a positive integer", ra)
	}
	var bresp BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Rejected != 8 || bresp.RetryAfterSecs < 1 {
		t.Fatalf("batch response: %+v", bresp)
	}
	for i, r := range bresp.Results {
		if r.Status != StatusRejected {
			t.Errorf("result %d status %q, want rejected", i, r.Status)
		}
	}
	if m := s.MetricsSnapshot(); m.Jobs.Accepted != 0 || m.Jobs.Completed != 0 {
		t.Errorf("refused batch executed: accepted=%d completed=%d", m.Jobs.Accepted, m.Jobs.Completed)
	}
}

// TestBatchStreaming: stream:true yields NDJSON items, every index
// exactly once.
func TestBatchStreaming(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 32})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jobs []JobRequest
	for i := 0; i < 5; i++ {
		jobs = append(jobs, JobRequest{Source: helloSrc, Name: "h"})
	}
	body, _ := json.Marshal(BatchRequest{Stream: true, Jobs: jobs})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	seen := map[int]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		seen[item.Index]++
		if item.Result.Status != StatusOK {
			t.Errorf("index %d status %q", item.Index, item.Result.Status)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d distinct indices, want 5 (%v)", len(seen), seen)
	}
	for i := 0; i < 5; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d delivered %d times", i, seen[i])
		}
	}
}

// TestRetryAfterHeader is the satellite requirement: 429s carry a
// positive integer Retry-After derived from the drain rate.
func TestRetryAfterHeader(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the worker and fill the queue.
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			s.Submit(context.Background(), JobRequest{Source: spinSrc, Name: "spin", TimeoutMs: 1500})
		}()
	}
	<-started
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().Queue.Busy == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for s.MetricsSnapshot().Queue.Depth == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	res, resp := postRun(t, ts.URL, JobRequest{Source: helloSrc, Name: "h"})
	if res != nil {
		t.Fatalf("expected 429, got result %+v", res)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %s, want 429", resp.Status)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After %q, want integer in [1,30]", ra)
	}
	wg.Wait()
}

// TestQueuePercentilesExported is the satellite requirement: /metrics
// exposes p50/p95/p99 queue latency from the live sample window.
func TestQueuePercentilesExported(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 16})
	defer drain(t, s)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), JobRequest{Source: helloSrc, Name: "h"})
		}()
	}
	wg.Wait()

	q := s.MetricsSnapshot().Queue
	if q.P50Ms > q.P95Ms || q.P95Ms > q.P99Ms {
		t.Errorf("percentiles not monotone: p50=%.3f p95=%.3f p99=%.3f", q.P50Ms, q.P95Ms, q.P99Ms)
	}
	// 8 jobs through 1 worker: the slowest waiters queued behind real
	// builds, so the upper tail must be nonzero.
	if q.P99Ms <= 0 {
		t.Errorf("p99 = %.3f after contended run, want > 0", q.P99Ms)
	}
	if q.RetryAfterSecs < 1 {
		t.Errorf("retry_after_secs = %d, want >= 1", q.RetryAfterSecs)
	}
}

// TestSubmitDrainRaceTenants is the satellite requirement at the
// server level: 64 concurrent submitters across 4 tenants race Drain;
// no job is both refused and executed, and per-tenant counters
// balance. Run under -race in CI.
func TestSubmitDrainRaceTenants(t *testing.T) {
	const submitters = 64
	s := newTest(t, Config{
		Workers:       4,
		QueueDepth:    submitters,
		TenantWeights: map[string]int{"t0": 4, "t1": 3, "t2": 2, "t3": 1},
	})

	var executed, refused, otherErr atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < submitters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := s.Submit(context.Background(), JobRequest{
					Source: helloSrc, Name: "h",
					Tenant: fmt.Sprintf("t%d", (p+i)%4),
				})
				switch {
				case err == nil:
					if res.Status == "" {
						t.Error("admitted job returned no result")
					}
					executed.Add(1)
				case errors.Is(err, ErrDraining), errors.Is(err, ErrBusy), errors.Is(err, ErrTenantBusy):
					refused.Add(1)
				default:
					otherErr.Add(1)
					t.Errorf("submit: %v", err)
				}
			}
		}(p)
	}
	time.Sleep(20 * time.Millisecond)
	drain(t, s)
	wg.Wait()

	total := int64(submitters * 4)
	if executed.Load()+refused.Load()+otherErr.Load() != total {
		t.Errorf("executed %d + refused %d != %d", executed.Load(), refused.Load(), total)
	}
	m := s.MetricsSnapshot()
	if m.Jobs.Accepted != executed.Load() {
		t.Errorf("server accepted %d, clients saw %d results (refused-and-executed or lost job)",
			m.Jobs.Accepted, executed.Load())
	}
	if m.Jobs.Completed != m.Jobs.Accepted {
		t.Errorf("accepted %d != completed %d after drain", m.Jobs.Accepted, m.Jobs.Completed)
	}
	for _, ts := range m.Tenants {
		if ts.Queued != 0 || ts.Running != 0 {
			t.Errorf("tenant %s not drained: %+v", ts.Tenant, ts)
		}
		if ts.Submitted != ts.Dequeued || ts.Dequeued != ts.Completed {
			t.Errorf("tenant %s counters unbalanced: %+v", ts.Tenant, ts)
		}
	}
}

// TestAutoscaleIntegration: under sustained backlog the pool grows
// from WorkersMin toward WorkersMax, and Drain stops the scaler
// without leaking its goroutine.
func TestAutoscaleIntegration(t *testing.T) {
	s := newTest(t, Config{
		WorkersMin: 1, WorkersMax: 3,
		QueueDepth:      64,
		AutoscaleTarget: time.Millisecond,
	})
	if got := s.Workers(); got != 1 {
		t.Fatalf("initial workers = %d, want WorkersMin 1", got)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Submit(context.Background(), JobRequest{Source: helloSrc, Name: "h"}); err != nil {
					return // draining
				}
			}
		}()
	}
	deadline := time.Now().Add(15 * time.Second)
	for s.Workers() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	grew := s.Workers()
	close(stop)
	wg.Wait()
	if grew < 2 {
		t.Errorf("pool never grew under backlog: workers = %d", grew)
	}
	m := s.MetricsSnapshot()
	if m.Autoscale == nil || !m.Autoscale.Enabled || m.Autoscale.ScaleUps == 0 {
		t.Errorf("autoscale metrics: %+v", m.Autoscale)
	}
	drain(t, s)
}

// TestRunLoadCluster drives the load harness end to end against two
// routing replicas with tenants, a synthetic corpus, and batching.
func TestRunLoadCluster(t *testing.T) {
	srvs, eps := newCluster(t, 2, func(i int, cfg *Config) {
		cfg.Workers = 2
		cfg.QueueDepth = 64
	})
	_ = srvs
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addrs:          []string{eps[0].URL, eps[1].URL},
		Concurrency:    4,
		Requests:       24,
		Tenants:        []string{"a", "b", "c"},
		Distinct:       6,
		SyntheticFuncs: 32,
		Batch:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Statuses[StatusOK]; got != 24 {
		t.Fatalf("ok = %d of 24: %+v", got, rep.Statuses)
	}
	if len(rep.TenantLoads) != 3 {
		t.Errorf("tenant breakdown: %+v", rep.TenantLoads)
	}
	var jobs int64
	for _, rl := range rep.ReplicaLoads {
		jobs += rl.Jobs
	}
	if jobs != 24 {
		t.Errorf("replica jobs sum %d, want 24 (%+v)", jobs, rep.ReplicaLoads)
	}
	// Both replicas should have executed something: 6 variants spread
	// over a 2-replica ring makes a single-sided split very unlikely,
	// but don't flake on it — just require the breakdown exists.
	if len(rep.ReplicaLoads) == 0 {
		t.Error("no replica breakdown")
	}
}
