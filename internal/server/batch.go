package server

// POST /v1/batch: submit a job array in one round trip.
//
// The batch carries one tenant; admission through the scheduler is
// atomic per replica — the sub-batch a replica executes is admitted
// whole or refused whole, so a client never discovers half its jobs
// ran while the rest bounced. A refusal is not an HTTP error: refused
// jobs come back as StatusRejected results (with the same Retry-After
// estimate a 429 would carry) alongside the executed ones, because in
// cluster mode one batch may fan out to several replicas and succeed
// on some of them.
//
// In cluster mode the receiving replica partitions the batch by
// fingerprint owner and relays each remote sub-batch to its owner in
// parallel (single hop, same fallback-to-local rules as /v1/run).
//
// Responses: by default one JSON BatchResponse with results in
// request order; with "stream": true, NDJSON BatchItem lines in
// completion order, each carrying its request index.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// maxBatchJobs bounds one batch request.
const maxBatchJobs = 4096

// BatchRequest is the /v1/batch payload.
type BatchRequest struct {
	// Tenant schedules the whole batch (default "default"); individual
	// jobs may not name a different one.
	Tenant string `json:"tenant,omitempty"`
	// Stream selects NDJSON completion-order delivery.
	Stream bool         `json:"stream,omitempty"`
	Jobs   []JobRequest `json:"jobs"`
}

// BatchItem is one NDJSON line of a streamed batch response.
type BatchItem struct {
	Index  int       `json:"index"`
	Result JobResult `json:"result"`
}

// BatchResponse is the aggregated (non-streamed) batch reply.
type BatchResponse struct {
	Tenant   string `json:"tenant"`
	Count    int    `json:"count"`
	Rejected int    `json:"rejected"`
	// RetryAfterSecs is set when any job was rejected: the drain-rate
	// estimate of when a retry should be admitted.
	RetryAfterSecs int         `json:"retry_after_secs,omitempty"`
	Results        []JobResult `json:"results"`
}

type batchOutcome struct {
	idx int
	res JobResult
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	var breq BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(breq.Jobs) == 0 {
		http.Error(w, "batch needs at least one job", http.StatusBadRequest)
		return
	}
	if len(breq.Jobs) > maxBatchJobs {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(breq.Jobs), maxBatchJobs), http.StatusBadRequest)
		return
	}
	tenant := breq.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	routed := r.Header.Get(headerRouted) != ""
	if routed {
		s.proxiedIn.Add(int64(len(breq.Jobs)))
	}

	// Partition by owning replica. Everything stays local outside
	// cluster mode, when this request already took its routing hop, or
	// when a job's owner is in its down cooldown.
	local := make([]int, 0, len(breq.Jobs))
	remote := map[string][]int{}
	if s.ring != nil && !routed {
		for i, jr := range breq.Jobs {
			if owner, ok := s.ownerOf(jr); ok && owner != s.self && s.peerUp(owner) {
				remote[owner] = append(remote[owner], i)
			} else {
				local = append(local, i)
			}
		}
	} else {
		for i := range breq.Jobs {
			local = append(local, i)
		}
	}

	// Admit the local sub-batch (atomically) before writing any
	// response bytes, so an all-local draining refusal is still a
	// clean 503.
	localReqs := make([]JobRequest, len(local))
	for n, i := range local {
		localReqs[n] = breq.Jobs[i]
	}
	var localJobs []*job
	var localErr error
	if len(local) > 0 {
		localJobs, localErr = s.admitBatch(r.Context(), tenant, localReqs, routed)
		if localErr != nil && len(remote) == 0 &&
			(errors.Is(localErr, ErrDraining) || !isBusyErr(localErr)) {
			// Nothing routable elsewhere and nothing admitted: report
			// draining (503) and malformed batches (400) as HTTP errors
			// rather than a result set of rejections.
			if errors.Is(localErr, ErrDraining) {
				s.writeSubmitError(w, localErr)
			} else {
				http.Error(w, localErr.Error(), http.StatusBadRequest)
			}
			return
		}
	}

	out := make(chan batchOutcome, len(breq.Jobs))
	var wg sync.WaitGroup
	if localErr != nil {
		// Refused whole (atomic admission): every local job reports
		// rejected; none executed.
		retry := s.retryAfterSecs()
		for _, i := range local {
			out <- batchOutcome{i, s.rejectedResult(tenant, localErr, retry)}
		}
	} else {
		for n := range localJobs {
			wg.Add(1)
			go func(idx int, j *job) {
				defer wg.Done()
				<-j.done
				out <- batchOutcome{idx, j.res}
			}(local[n], localJobs[n])
		}
	}
	for owner, idxs := range remote {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			s.runRemoteBatch(r.Context(), owner, tenant, breq.Jobs, idxs, out)
		}(owner, idxs)
	}
	go func() { wg.Wait(); close(out) }()

	if breq.Stream {
		s.streamBatch(w, out)
		return
	}
	results := make([]JobResult, len(breq.Jobs))
	rejected := 0
	for o := range out {
		results[o.idx] = o.res
		if o.res.Status == StatusRejected {
			rejected++
		}
	}
	resp := BatchResponse{Tenant: tenant, Count: len(results), Rejected: rejected, Results: results}
	if rejected > 0 {
		resp.RetryAfterSecs = s.retryAfterSecs()
		w.Header().Set("Retry-After", fmt.Sprint(resp.RetryAfterSecs))
	}
	writeJSON(w, resp)
}

func isBusyErr(err error) bool {
	return errors.Is(err, ErrBusy) || errors.Is(err, ErrTenantBusy)
}

func (s *Server) rejectedResult(tenant string, err error, retrySecs int) JobResult {
	return JobResult{
		Status:  StatusRejected,
		Tenant:  tenant,
		Replica: s.self,
		Error:   fmt.Sprintf("%v (retry after %ds)", err, retrySecs),
	}
}

// runRemoteBatch relays one owner's sub-batch and feeds its results
// back under the original indices; on relay failure it falls back to
// local execution of the same jobs.
func (s *Server) runRemoteBatch(ctx context.Context, owner, tenant string, all []JobRequest, idxs []int, out chan<- batchOutcome) {
	sub := BatchRequest{Tenant: tenant, Jobs: make([]JobRequest, len(idxs))}
	for n, i := range idxs {
		sub.Jobs[n] = all[i]
	}
	body, _ := json.Marshal(sub)
	relayOK := false
	var bresp BatchResponse
	resp, err := s.relayRequest(ctx, owner, "/v1/batch", body)
	if err == nil {
		if resp.StatusCode == http.StatusOK &&
			json.NewDecoder(resp.Body).Decode(&bresp) == nil &&
			len(bresp.Results) == len(idxs) {
			relayOK = true
		}
		resp.Body.Close()
	}
	if relayOK {
		s.proxiedOut.Add(int64(len(idxs)))
		s.markPeerProxied(owner)
		for n, i := range idxs {
			out <- batchOutcome{i, bresp.Results[n]}
		}
		return
	}
	if err != nil || (resp != nil && resp.StatusCode == http.StatusServiceUnavailable) {
		s.markPeerDown(owner)
	}
	s.proxyFallbacks.Add(int64(len(idxs)))
	jobs, aerr := s.admitBatch(ctx, tenant, sub.Jobs, false)
	if aerr != nil {
		retry := s.retryAfterSecs()
		for _, i := range idxs {
			out <- batchOutcome{i, s.rejectedResult(tenant, aerr, retry)}
		}
		return
	}
	for n, j := range jobs {
		<-j.done
		out <- batchOutcome{idxs[n], j.res}
	}
}

// streamBatch writes NDJSON BatchItem lines as jobs complete.
func (s *Server) streamBatch(w http.ResponseWriter, out <-chan batchOutcome) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for o := range out {
		enc.Encode(BatchItem{Index: o.idx, Result: o.res})
		if fl != nil {
			fl.Flush()
		}
	}
}
