package server

import (
	"fmt"
	"strings"
)

// SyntheticSource generates variant v of the load harness's synthetic
// serving corpus: a deterministic MiniC program of funcs small
// functions dispatched through a function-pointer table. Every
// variant differs in its embedded constants, so each has a distinct
// build fingerprint; the program itself runs in a few thousand guest
// instructions. That shape — compile-heavy, run-light — makes a
// corpus of these the instrument for measuring the build store and
// fingerprint routing: throughput is set by whether a replica has the
// variant's image cached, not by guest execution.
//
// The default 256 functions yield roughly 1.8k lines per variant,
// which costs a few tens of milliseconds to build cold and well under
// a millisecond to serve from the mem tier.
func SyntheticSource(v, funcs int) string {
	if funcs <= 0 {
		funcs = 256
	}
	// Deterministic per-variant constants via an xorshift stream.
	rng := uint64(v)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int((rng >> 1) % uint64(n))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// synthetic serving corpus, variant %d (%d funcs)\n", v, funcs)
	fmt.Fprintf(&b, "enum { VARIANT = %d, NFUNCS = %d };\n\n", v, funcs)
	b.WriteString("typedef long (*step_fn)(long);\n\n")
	for i := 0; i < funcs; i++ {
		k1, k2, k3 := 1+next(1<<20), next(1<<16), 1+next(7)
		fmt.Fprintf(&b, "static long step%d(long x) {\n", i)
		fmt.Fprintf(&b, "\tlong a = x ^ %d;\n", k2)
		fmt.Fprintf(&b, "\ta = a * %d + %d;\n", k3, k1)
		fmt.Fprintf(&b, "\ta += (a >> %d) & 1023;\n", 1+next(5))
		b.WriteString("\tif (a < 0) a = -a;\n")
		fmt.Fprintf(&b, "\treturn a + %d;\n}\n", next(255))
	}
	b.WriteString("\nstatic step_fn steps[NFUNCS] = {\n")
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&b, "\tstep%d,\n", i)
	}
	b.WriteString("};\n\n")
	b.WriteString(`int main(void) {
	long acc = VARIANT + 1;
	for (int i = 0; i < NFUNCS; i++)
		acc = steps[i](acc) & 0xFFFFFF;
	printf("synth%d: %ld\n", VARIANT, acc);
	return 0;
}
`)
	return b.String()
}
