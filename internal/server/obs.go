package server

// Observability surface: the span-recording helpers runJob and the
// worker call, the /v1/trace/{id} and /v1/audit endpoints, and the
// Prometheus text rendering of /v1/metrics?format=prom. All of it
// reads the same counters as the JSON metrics document — the two
// formats can never disagree.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"mcfi/internal/obs"
)

// Version identifies the serving build (reported by /v1/healthz).
const Version = "0.9.0"

// maxTraceIDLen bounds an adopted (peer- or client-supplied) trace ID.
const maxTraceIDLen = 64

// maxTracePostBytes bounds one span-push body on /v1/trace/{id}.
const maxTracePostBytes = 1 << 20

// adoptTrace resolves a job's trace ID at ingress: mint one when the
// caller did not propagate one, bound hostile lengths, and collapse to
// "" (tracing off for this job) when the ID is not sampled — the
// empty ID short-circuits every later span call to a nil check.
func (s *Server) adoptTrace(id string) string {
	if id == "" {
		id = obs.Mint()
	}
	if len(id) > maxTraceIDLen {
		id = id[:maxTraceIDLen]
	}
	if !s.tracer.Sampled(id) {
		return ""
	}
	return id
}

// stampAdmission marks the end of a job's admission phase. It MUST
// run before the job is handed to the scheduler: once enqueued, a
// worker may pop the job immediately and read these fields, and the
// enqueue is the only happens-before edge between the two goroutines.
func (s *Server) stampAdmission(j *job) {
	j.admitted = time.Now()
	j.admitDur = j.admitted.Sub(j.queuedAt)
}

// admitSpan records the ingress→admitted span of a stamped job
// (called only after admission succeeds, so refused jobs leave no
// span; it only reads the job, which a worker may already own).
func (s *Server) admitSpan(j *job) {
	s.span(j, obs.SpanAdmission, j.queuedAt, j.admitDur,
		map[string]string{"tenant": j.tenant})
}

// span records one phase of a sampled job.
func (s *Server) span(j *job, name string, start time.Time, dur time.Duration, attrs map[string]string) {
	if j.trace == "" {
		return
	}
	s.tracer.Record(obs.Span{
		Trace:   j.trace,
		Name:    name,
		Replica: s.self,
		StartNs: start.UnixNano(),
		DurNs:   dur.Nanoseconds(),
		Attrs:   attrs,
	})
}

// relaySpan records the proxy hop under the propagated trace and
// pushes the span to the owner, whose ring holds the job's other
// spans, so GET /v1/trace/{id} there returns the merged set. The push
// is asynchronous best-effort: tracing must never slow down or fail
// the data path.
func (s *Server) relaySpan(trace, owner string, start time.Time, dur time.Duration) {
	if trace == "" || !s.tracer.Sampled(trace) {
		return
	}
	sp := obs.Span{
		Trace:   trace,
		Name:    obs.SpanRelay,
		Replica: s.self,
		StartNs: start.UnixNano(),
		DurNs:   dur.Nanoseconds(),
		Attrs:   map[string]string{"peer": owner},
	}
	s.tracer.Record(sp)
	go s.pushSpans(owner, trace, []obs.Span{sp})
}

// pushSpans POSTs spans to a peer's /v1/trace/{id}.
func (s *Server) pushSpans(owner, trace string, spans []obs.Span) {
	body, err := json.Marshal(spans)
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPost, owner+"/v1/trace/"+trace, strings.NewReader(string(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.proxyClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

// handleTrace serves GET /v1/trace/{id} (the recorded span set) and
// accepts POST /v1/trace/{id} (span push from a proxying peer; spans
// for unsampled or unknown IDs are dropped by the recorder's own
// sampling rule, so a hostile push cannot force retention).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") || len(id) > maxTraceIDLen {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		tr, ok := s.tracer.Get(id)
		if !ok {
			http.Error(w, "trace not found (unsampled, evicted, or never seen)", http.StatusNotFound)
			return
		}
		writeJSON(w, tr)
	case http.MethodPost:
		var spans []obs.Span
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxTracePostBytes))
		if err := dec.Decode(&spans); err != nil {
			http.Error(w, fmt.Sprintf("bad span push: %v", err), http.StatusBadRequest)
			return
		}
		for _, sp := range spans {
			sp.Trace = id // the path, not the payload, names the trace
			s.tracer.Record(sp)
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// AuditPage is the GET /v1/audit body.
type AuditPage struct {
	// Total counts records ever emitted; Records is the retained tail
	// (oldest first), bounded by Config.AuditBuffer.
	Total      int64             `json:"total"`
	SinkErrors int64             `json:"sink_errors"`
	Records    []obs.AuditRecord `json:"records"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	recs := s.audit.Records()
	if recs == nil {
		recs = []obs.AuditRecord{}
	}
	writeJSON(w, AuditPage{
		Total:      s.audit.Total(),
		SinkErrors: s.audit.SinkErrs(),
		Records:    recs,
	})
}

// Audit exposes the audit log (tests, embedding callers).
func (s *Server) Audit() *obs.AuditLog { return s.audit }

// Tracer exposes the trace recorder (tests, embedding callers).
func (s *Server) Tracer() *obs.Recorder { return s.tracer }

// renderProm renders the metrics document in Prometheus text
// exposition format from the same snapshot as the JSON endpoint.
func (s *Server) renderProm() []byte {
	m := s.MetricsSnapshot()
	p := obs.NewProm()

	p.Gauge("mcfi_uptime_seconds", "seconds since server start", m.UptimeSecs)
	p.Gauge("mcfi_draining", "1 while the server is draining", b2f(m.Draining))

	p.Counter("mcfi_jobs_accepted_total", "jobs admitted by the scheduler", float64(m.Jobs.Accepted))
	p.Counter("mcfi_jobs_completed_total", "jobs completed (any outcome)", float64(m.Jobs.Completed))
	p.CounterVec("mcfi_jobs_rejected_total", "jobs refused at admission",
		[]obs.Label{{Name: "scope", Value: "queue"}}, float64(m.Jobs.Rejected))
	p.CounterVec("mcfi_jobs_rejected_total", "",
		[]obs.Label{{Name: "scope", Value: "tenant"}}, float64(m.Jobs.TenantRejected))
	p.Counter("mcfi_batches_total", "batch requests admitted", float64(m.Jobs.Batches))
	p.Counter("mcfi_batch_jobs_total", "jobs admitted via batches", float64(m.Jobs.BatchJobs))
	for _, o := range []struct {
		outcome string
		n       int64
	}{
		{StatusOK, m.Jobs.Ok},
		{StatusCFI, m.Jobs.CFIViolations},
		{StatusFault, m.Jobs.Faults},
		{StatusTimeout, m.Jobs.Timeouts},
		{StatusCancelled, m.Jobs.Cancelled},
		{StatusBudget, m.Jobs.BudgetExhausted},
		{StatusBuildError, m.Jobs.BuildErrors},
	} {
		p.CounterVec("mcfi_jobs_total", "completed jobs by outcome",
			[]obs.Label{{Name: "outcome", Value: o.outcome}}, float64(o.n))
	}

	p.Gauge("mcfi_queue_depth", "jobs admitted but not yet running", float64(m.Queue.Depth))
	p.Gauge("mcfi_queue_capacity", "shared admission queue bound", float64(m.Queue.Capacity))
	p.Gauge("mcfi_workers", "current worker pool width", float64(m.Queue.Workers))
	p.Gauge("mcfi_workers_busy", "workers currently executing a job", float64(m.Queue.Busy))

	for _, t := range m.Tenants {
		lbl := []obs.Label{{Name: "tenant", Value: t.Tenant}}
		p.GaugeVec("mcfi_tenant_queued", "queued jobs by tenant", lbl, float64(t.Queued))
	}
	for _, t := range m.Tenants {
		lbl := []obs.Label{{Name: "tenant", Value: t.Tenant}}
		p.CounterVec("mcfi_tenant_submitted_total", "jobs submitted by tenant", lbl, float64(t.Submitted))
	}
	for _, t := range m.Tenants {
		lbl := []obs.Label{{Name: "tenant", Value: t.Tenant}}
		p.CounterVec("mcfi_tenant_completed_total", "jobs completed by tenant", lbl, float64(t.Completed))
	}
	for _, t := range m.Tenants {
		lbl := []obs.Label{{Name: "tenant", Value: t.Tenant}}
		p.CounterVec("mcfi_tenant_refused_total", "admission refusals by tenant", lbl, float64(t.Refused))
	}

	p.Counter("mcfi_store_hits_total", "build-store hits (any tier)", float64(m.BuildStore.Hits))
	p.Counter("mcfi_store_misses_total", "build-store misses", float64(m.BuildStore.Misses))
	p.Counter("mcfi_store_builds_total", "fresh image builds", float64(m.BuildStore.Builds))
	p.Counter("mcfi_store_failed_builds_total", "deterministic build failures", float64(m.BuildStore.FailedBuilds))
	for _, tier := range sortedKeys(m.BuildStore.TierHits) {
		p.CounterVec("mcfi_store_tier_hits_total", "build-store hits by tier",
			[]obs.Label{{Name: "tier", Value: tier}}, float64(m.BuildStore.TierHits[tier]))
	}

	p.Counter("mcfi_guest_instret_total", "retired guest instructions", float64(m.Exec.GuestInstret))
	p.Counter("mcfi_exec_seconds_total", "wall seconds of guest execution", m.Exec.ExecSecs)
	p.Counter("mcfi_check_execs_total", "fused check transactions executed", float64(m.Exec.CheckExecs))
	p.Counter("mcfi_check_halts_total", "halted check transactions (CFI faults)", float64(m.Exec.CheckHalts))
	p.Counter("mcfi_verdict_hits_total", "checks served from the verdict cache", float64(m.Exec.VerdictHits))
	p.Counter("mcfi_verdict_misses_total", "checks that walked the tables", float64(m.Exec.VerdictMisses))
	p.Counter("mcfi_icache_fills_total", "cold predecodes into the instruction cache", float64(m.Exec.ICacheFills))
	p.Counter("mcfi_jit_blocks_compiled_total", "blockjit blocks compiled", float64(m.Exec.JITBlocks))
	p.Counter("mcfi_jit_block_runs_total", "compiled-block dispatches", float64(m.Exec.JITBlockRuns))
	p.Counter("mcfi_jit_cold_steps_total", "single-instruction dispatches under blockjit", float64(m.Exec.JITColdSteps))

	if m.Cluster != nil {
		p.Counter("mcfi_proxied_in_total", "jobs received via a routing hop", float64(m.Cluster.ProxiedIn))
		p.Counter("mcfi_proxied_out_total", "jobs relayed to their owner", float64(m.Cluster.ProxiedOut))
		p.Counter("mcfi_proxy_fallbacks_total", "relays that fell back to local execution", float64(m.Cluster.ProxyFallbacks))
	}

	p.Gauge("mcfi_trace_sample_rate", "fraction of jobs traced", m.Obs.TraceSampleRate)
	p.Counter("mcfi_traces_sampled_total", "traces admitted to the ring", float64(m.Obs.TracesSampled))
	p.Counter("mcfi_trace_spans_total", "spans recorded", float64(m.Obs.SpansRecorded))
	p.Counter("mcfi_traces_evicted_total", "traces evicted from the ring", float64(m.Obs.TracesEvicted))
	p.Gauge("mcfi_traces_retained", "traces currently in the ring", float64(m.Obs.TracesRetained))
	p.Counter("mcfi_audit_records_total", "CFI violation audit records emitted", float64(m.Obs.AuditRecords))
	p.Counter("mcfi_audit_sink_errors_total", "audit records that failed to reach the -audit-log sink", float64(m.Obs.AuditSinkErrors))

	p.Histogram("mcfi_queue_wait_seconds", "admission-to-dequeue wait", "tenant", s.queueHist.Snapshot())
	p.Histogram("mcfi_build_seconds", "build phase duration by store tier", "tier", s.buildHist.Snapshot())
	p.Histogram("mcfi_run_seconds", "guest execution duration by engine", "engine", s.runHist.Snapshot())

	return p.Bytes()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
