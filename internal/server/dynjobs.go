package server

import (
	"fmt"
	"strings"

	"mcfi/internal/toolchain"
)

// Dynamic-linking job kinds: synthesized guests that exercise MCFI's
// update-transaction machinery under multi-tenant serving load. Both
// kinds are deterministic functions of (kind, work), so their build
// fingerprints route and cache like any other job.

const (
	// defaultDlopenModules is the module count of a kind="dlopen" job
	// when the request leaves Work at 0; maxDynModules caps either
	// kind so a hostile request cannot make one job link forever.
	defaultDlopenModules = 8
	defaultJitsimStages  = 4
	maxDynModules        = 32
)

// dynSources synthesizes the host program and plugin modules of a
// dynamic job kind.
//
// "dlopen" is update-heavy: the guest loads `work` modules back to
// back, touching each through one checked call — per job, `work`
// dlopen policy updates plus the dlsym flips, with barely any compute
// between them.
//
// "jitsim" is check-heavy: a staged-JIT simulation (a tiered runtime
// emitting code at run time, the paper's §8.2 dynamic-code scenario)
// that loads a few stage modules and then hammers each through a hot
// checked function-pointer loop, so update transactions interleave
// with a high rate of concurrent check transactions.
func dynSources(kind string, work int) (toolchain.Source, []toolchain.Source, error) {
	mods, iters := defaultDlopenModules, 16
	if kind == "jitsim" {
		mods, iters = defaultJitsimStages, 2000
	}
	if work > 0 {
		mods = work
	}
	if mods > maxDynModules {
		mods = maxDynModules
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "int main(void) {\n\tlong acc = 0;\n")
	for i := 0; i < mods; i++ {
		fmt.Fprintf(&sb, `
	long h%d = dlopen("%s%d");
	if (h%d == 0) return %d;
	long a%d = dlsym(h%d, "%s%d_fn");
	if (a%d == 0) return %d;
	long (*f%d)(long) = (long (*)(long))a%d;
	for (int i%d = 0; i%d < %d; i%d++) acc += f%d(i%d);
`, i, kind, i, i, 10+i, i, i, kind, i, i, 50+i, i, i, i, i, iters, i, i, i)
	}
	sb.WriteString("\tprintf(\"%ld\\n\", acc);\n\treturn 0;\n}\n")
	host := toolchain.Source{
		Name: fmt.Sprintf("%s-%d", kind, mods),
		Text: sb.String(),
	}

	plugins := make([]toolchain.Source, mods)
	for i := 0; i < mods; i++ {
		plugins[i] = toolchain.Source{
			Name: fmt.Sprintf("%s%d", kind, i),
			Text: fmt.Sprintf(`
long %s%d_state = %d;
long %s%d_fn(long x) { return x * %s%d_state + %d; }
`, kind, i, i+3, kind, i, kind, i, i),
		}
	}
	return host, plugins, nil
}
