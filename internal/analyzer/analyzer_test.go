package analyzer_test

import (
	"testing"

	"mcfi/internal/analyzer"
	"mcfi/internal/libc"
	"mcfi/internal/minic"
	"mcfi/internal/sema"
	"mcfi/internal/toolchain"
)

func analyze(t *testing.T, src string) *analyzer.Report {
	t.Helper()
	f, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return analyzer.Analyze(u)
}

func TestCleanProgramNoViolations(t *testing.T) {
	rep := analyze(t, `
int add(int a, int b) { return a + b; }
int (*op)(int, int) = add;
int run(void) { return op(1, 2); }
char *greet = "hi";
long touint(char c) { return (long)c; }
`)
	if rep.VBE != 0 {
		t.Errorf("VBE = %d, want 0; findings: %v", rep.VBE, rep.Findings)
	}
}

func TestExplicitFPCastDetected(t *testing.T) {
	rep := analyze(t, `
void target(void) {}
void (*keep)(void) = target;
int main(void) {
	int (*bad)(int) = (int (*)(int))target;
	return bad(0);
}`)
	if rep.VBE != 1 {
		t.Fatalf("VBE = %d, want 1; %v", rep.VBE, rep.Findings)
	}
	// A function constant of the wrong type: K1, needs a fix.
	if rep.K1 != 1 || rep.VAE != 1 {
		t.Errorf("K1=%d VAE=%d, want 1/1; %v", rep.K1, rep.VAE, rep.Findings)
	}
}

func TestImplicitFPCastDetected(t *testing.T) {
	// The K2 shape: fp stored into void* (implicit), later cast back.
	rep := analyze(t, `
int worker(int x) { return x; }
int (*keep)(int) = worker;
void *slot;
void stash(void) { slot = keep; }
int (*restore(void))(int) { return (int (*)(int))slot; }
`)
	if rep.VBE != 2 {
		t.Fatalf("VBE = %d, want 2; %v", rep.VBE, rep.Findings)
	}
	if rep.K2 != 2 || rep.K1 != 0 {
		t.Errorf("K1=%d K2=%d, want 0/2; %v", rep.K1, rep.K2, rep.Findings)
	}
}

func TestUpcastEliminated(t *testing.T) {
	rep := analyze(t, `
struct base { int tag; void (*vfn)(void); };
struct derived { int tag; void (*vfn)(void); int extra; };
void handle(struct base *b) {}
int main(void) {
	struct derived d;
	handle((struct base*)&d);
	return 0;
}`)
	if rep.VBE != 1 || rep.UC != 1 || rep.VAE != 0 {
		t.Errorf("VBE=%d UC=%d VAE=%d, want 1/1/0; %v",
			rep.VBE, rep.UC, rep.VAE, rep.Findings)
	}
}

func TestTaggedDowncastEliminated(t *testing.T) {
	rep := analyze(t, `
struct base { int tag; void (*vfn)(void); };
struct derived { int tag; void (*vfn)(void); int extra; };
int use(struct base *b) {
	if (b->tag == 1) {
		struct derived *d = (struct derived*)b;
		return d->extra;
	}
	return 0;
}`)
	if rep.VBE != 1 || rep.DC != 1 || rep.VAE != 0 {
		t.Errorf("VBE=%d DC=%d VAE=%d, want 1/1/0; %v",
			rep.VBE, rep.DC, rep.VAE, rep.Findings)
	}
}

func TestUntaggedDowncastRemains(t *testing.T) {
	// No integer tag leading the abstract struct: the downcast cannot
	// be proven safe and must survive elimination (a K2 case, as in
	// perlbench/gcc, which "decided those downcasts are safe").
	rep := analyze(t, `
struct base { void (*vfn)(void); };
struct derived { void (*vfn)(void); int extra; };
int use(struct base *b) {
	struct derived *d = (struct derived*)b;
	return d->extra;
}`)
	if rep.VBE != 1 || rep.DC != 0 || rep.VAE != 1 || rep.K2 != 1 {
		t.Errorf("VBE=%d DC=%d VAE=%d K2=%d, want 1/0/1/1; %v",
			rep.VBE, rep.DC, rep.VAE, rep.K2, rep.Findings)
	}
}

func TestMallocFreeEliminated(t *testing.T) {
	rep := analyze(t, `
void *malloc(long n);
void free(void *p);
struct cbs { void (*f)(void); int n; };
int main(void) {
	struct cbs *c = (struct cbs*)malloc(sizeof(struct cbs));
	free(c);
	return 0;
}`)
	if rep.VBE != 2 || rep.MF != 2 || rep.VAE != 0 {
		t.Errorf("VBE=%d MF=%d VAE=%d, want 2/2/0; %v",
			rep.VBE, rep.MF, rep.VAE, rep.Findings)
	}
}

func TestNullUpdateEliminated(t *testing.T) {
	rep := analyze(t, `
void (*handler)(void) = (void (*)(void))0;
void reset(void) { handler = 0; }
`)
	if rep.VBE != 2 || rep.SU != 2 || rep.VAE != 0 {
		t.Errorf("VBE=%d SU=%d VAE=%d, want 2/2/0; %v",
			rep.VBE, rep.SU, rep.VAE, rep.Findings)
	}
}

func TestNonFPAccessEliminated(t *testing.T) {
	// The perlbench XPVLV example: struct has an fp field, but only a
	// non-fp field is touched after the cast.
	rep := analyze(t, `
struct xpvlv { long xlv_targlen; int (*magic)(int); };
struct sv { void *sv_any; };
long peek(struct sv *sv) {
	return ((struct xpvlv*)(sv->sv_any))->xlv_targlen;
}`)
	if rep.VBE != 1 || rep.NF != 1 || rep.VAE != 0 {
		t.Errorf("VBE=%d NF=%d VAE=%d, want 1/1/0; %v",
			rep.VBE, rep.NF, rep.VAE, rep.Findings)
	}
}

func TestFPFieldAccessNotEliminated(t *testing.T) {
	// Same shape, but the accessed field IS the function pointer: this
	// is a real violation.
	rep := analyze(t, `
struct xpvlv { long xlv_targlen; int (*magic)(int); };
struct sv { void *sv_any; };
int call(struct sv *sv) {
	return ((struct xpvlv*)(sv->sv_any))->magic(1);
}`)
	if rep.NF != 0 || rep.VAE != 1 {
		t.Errorf("NF=%d VAE=%d, want 0/1; %v", rep.NF, rep.VAE, rep.Findings)
	}
}

func TestGccSplayTreeK1(t *testing.T) {
	// The paper's gcc case: a key comparator typed over unsigned long
	// is set to strcmp (typed over char*). K1: needs a wrapper.
	rep := analyze(t, `
int strcmp(char *a, char *b);
int (*key_cmp)(unsigned long, unsigned long);
void setup(void) {
	key_cmp = (int (*)(unsigned long, unsigned long))strcmp;
}`)
	if rep.K1 != 1 || rep.VAE != 1 {
		t.Errorf("K1=%d VAE=%d, want 1/1; %v", rep.K1, rep.VAE, rep.Findings)
	}
	// And the fixed version (a wrapper) is clean.
	fixed := analyze(t, `
int strcmp(char *a, char *b);
int cmp_ul(unsigned long a, unsigned long b) {
	return strcmp((char*)a, (char*)b);
}
int (*key_cmp)(unsigned long, unsigned long) = cmp_ul;
`)
	if fixed.K1 != 0 {
		t.Errorf("wrapper fix should clear K1, got %d; %v", fixed.K1, fixed.Findings)
	}
}

func TestAsmCounting(t *testing.T) {
	rep := analyze(t, `
void plain(void) { asm("nop"); }
void annotated(void) { asm("call *%rax" : "helper : f(i,)->i"); }
`)
	if rep.AsmTotal != 2 || rep.AsmAnnotated != 1 {
		t.Errorf("asm=%d annotated=%d, want 2/1", rep.AsmTotal, rep.AsmAnnotated)
	}
}

func TestUnionWithFPMember(t *testing.T) {
	// A union that includes a function pointer field: implicit
	// conversions into it are C1 violations (paper §6).
	rep := analyze(t, `
union u { void (*f)(void); long v; };
void set(union u *p, long raw) {
	p->v = raw;               // fine: no cast involving fp
	p->f = (void (*)(void))raw;  // violation (K2: int -> fp)
}`)
	if rep.VBE != 1 || rep.K2 != 1 {
		t.Errorf("VBE=%d K2=%d, want 1/1; %v", rep.VBE, rep.K2, rep.Findings)
	}
}

func TestLibcFindings(t *testing.T) {
	// The libc deliberately mirrors MUSL's syscall-boundary casts:
	// the analyzer must find violations, all of kind K2 (no K1), plus
	// the annotated memcpy assembly (paper §7 reports 45 findings in
	// MUSL: 5 K1 + 40 K2; our libc is far smaller).
	f, err := minic.Parse("libc", libc.Source)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sema.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.Analyze(u)
	if rep.VBE == 0 {
		t.Error("libc should have C1 findings (syscall-boundary casts)")
	}
	if rep.K1 != 0 {
		t.Errorf("libc K1 = %d, want 0 (all boundary casts are round-trips); %v",
			rep.K1, rep.Findings)
	}
	if rep.AsmTotal != 1 || rep.AsmAnnotated != 1 {
		t.Errorf("libc asm=%d annotated=%d, want 1/1", rep.AsmTotal, rep.AsmAnnotated)
	}
	t.Logf("libc: VBE=%d UC=%d DC=%d MF=%d SU=%d NF=%d VAE=%d K1=%d K2=%d",
		rep.VBE, rep.UC, rep.DC, rep.MF, rep.SU, rep.NF, rep.VAE, rep.K1, rep.K2)
}

func TestReportAdd(t *testing.T) {
	a := &analyzer.Report{VBE: 2, UC: 1, VAE: 1, K1: 1, SLOC: 10}
	b := &analyzer.Report{VBE: 3, MF: 2, VAE: 1, K2: 1, SLOC: 20}
	a.Add(b)
	if a.VBE != 5 || a.UC != 1 || a.MF != 2 || a.VAE != 2 || a.K1 != 1 || a.K2 != 1 || a.SLOC != 30 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestCountSLOC(t *testing.T) {
	if n := analyzer.CountSLOC("a\n\n  \nb\nc"); n != 3 {
		t.Errorf("SLOC = %d, want 3", n)
	}
	if n := analyzer.CountSLOC(""); n != 0 {
		t.Errorf("SLOC(empty) = %d, want 0", n)
	}
}

func TestAnalyzeViaToolchain(t *testing.T) {
	u, err := toolchain.New().Analyze(toolchain.Source{Name: "x", Text: `
int main(void) { return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.Analyze(u)
	if rep.K1 != 0 {
		t.Errorf("prelude-only program has K1=%d", rep.K1)
	}
}
