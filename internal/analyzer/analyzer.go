// Package analyzer implements MCFI's source analyzer (paper §6): it
// over-approximates violations of the two conditions required for
// type-matching CFG generation —
//
//	C1: no type cast to or from function pointer types (explicit or
//	    implicit, including through struct/union members), and
//	C2: no inline assembly (without type annotations),
//
// — then eliminates the paper's five classes of false positives
// (UC upcast, DC tagged downcast, MF malloc/free, SU literal update,
// NF non-function-pointer access) and classifies what remains into the
// paper's K1 (incompatible function-pointer initialization, needs a
// source fix) and K2 (round-trip casts, no fix needed) kinds. This is
// the pipeline behind Tables 1 and 2.
package analyzer

import (
	"fmt"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/sema"
)

// Kind classifies one C1 finding through the elimination pipeline.
type Kind int

// Finding kinds.
const (
	// KindViolation is a raw, uneliminated C1 violation before
	// K1/K2 classification.
	KindViolation Kind = iota
	// KindUC is an upcast between physical-subtype structs.
	KindUC
	// KindDC is a downcast guarded by a type-tag field.
	KindDC
	// KindMF is a malloc/calloc/realloc/free void* conversion.
	KindMF
	// KindSU is a function-pointer update with a literal (e.g. NULL).
	KindSU
	// KindNF is a cast whose result only touches non-fp fields.
	KindNF
	// KindK1 is an incompatible function-pointer initialization: the
	// cases that require source changes for the CFG to be complete.
	KindK1
	// KindK2 is a round-trip cast (fp -> other type -> fp).
	KindK2
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUC:
		return "UC"
	case KindDC:
		return "DC"
	case KindMF:
		return "MF"
	case KindSU:
		return "SU"
	case KindNF:
		return "NF"
	case KindK1:
		return "K1"
	case KindK2:
		return "K2"
	}
	return "VBE"
}

// Finding is one cast involving function-pointer types.
type Finding struct {
	Pos      minic.Pos
	From, To *ctypes.Type
	Kind     Kind
	Implicit bool
	Note     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] cast %s -> %s %s", f.Pos, f.Kind, f.From, f.To, f.Note)
}

// Report aggregates one translation unit's findings — one row of the
// paper's Tables 1 and 2.
type Report struct {
	Name string
	SLOC int
	// VBE is the violation count before false-positive elimination.
	VBE int
	// Per-rule elimination counts (Table 1 columns).
	UC, DC, MF, SU, NF int
	// VAE is the count after elimination.
	VAE int
	// K1/K2 classification of the remainder (Table 2).
	K1, K2 int
	// AsmTotal/AsmAnnotated count inline assemblies (condition C2).
	AsmTotal, AsmAnnotated int
	Findings               []Finding
}

// Add accumulates another report (for suite-level totals).
func (r *Report) Add(o *Report) {
	r.SLOC += o.SLOC
	r.VBE += o.VBE
	r.UC += o.UC
	r.DC += o.DC
	r.MF += o.MF
	r.SU += o.SU
	r.NF += o.NF
	r.VAE += o.VAE
	r.K1 += o.K1
	r.K2 += o.K2
	r.AsmTotal += o.AsmTotal
	r.AsmAnnotated += o.AsmAnnotated
}

type walker struct {
	rep *Report
}

// Analyze inspects a type-checked unit.
func Analyze(unit *sema.Unit) *Report {
	w := &walker{rep: &Report{Name: unit.File.Name}}
	for _, d := range unit.File.Decls {
		switch decl := d.(type) {
		case *minic.FuncDecl:
			if decl.Body != nil {
				w.stmt(decl.Body)
			}
		case *minic.VarDecl:
			if decl.Init != nil {
				w.expr(decl.Init, nil)
			}
		}
	}
	// Classify and count.
	for i := range w.rep.Findings {
		f := &w.rep.Findings[i]
		w.rep.VBE++
		switch f.Kind {
		case KindUC:
			w.rep.UC++
		case KindDC:
			w.rep.DC++
		case KindMF:
			w.rep.MF++
		case KindSU:
			w.rep.SU++
		case KindNF:
			w.rep.NF++
		default:
			w.rep.VAE++
			if f.Kind == KindK1 {
				w.rep.K1++
			} else {
				f.Kind = KindK2
				w.rep.K2++
			}
		}
	}
	return w.rep
}

// involvesFP reports whether a type involves function pointers at any
// depth, following pointers, arrays, and record members (the paper's
// over-approximation; the elimination rules cut the survivors down).
func involvesFP(t *ctypes.Type) bool { return fpRec(t, map[*ctypes.Type]bool{}) }

func fpRec(t *ctypes.Type, seen map[*ctypes.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t.Kind {
	case ctypes.Func:
		return true
	case ctypes.Pointer, ctypes.Array:
		return fpRec(t.Elem, seen)
	case ctypes.Struct, ctypes.Union:
		for _, f := range t.Fields {
			if fpRec(f.Type, seen) {
				return true
			}
		}
	}
	return false
}

// recordOf unwraps a pointer-to-record type.
func recordOf(t *ctypes.Type) *ctypes.Type {
	if t != nil && t.Kind == ctypes.Pointer && t.Elem != nil &&
		(t.Elem.Kind == ctypes.Struct || t.Elem.Kind == ctypes.Union) {
		return t.Elem
	}
	return nil
}

// hasTypeTag reports the paper's tagged-struct heuristic: the abstract
// struct's leading field is an integer discriminator.
func hasTypeTag(s *ctypes.Type) bool {
	return s != nil && s.Kind == ctypes.Struct && len(s.Fields) > 0 &&
		s.Fields[0].Type.IsInteger()
}

// isAllocCall matches malloc/calloc/realloc calls.
func isAllocCall(e minic.Expr) bool {
	call, ok := e.(*minic.Call)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*minic.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "malloc", "calloc", "realloc":
		return true
	}
	return false
}

// isFuncConstant reports whether e denotes a function's address (the
// K1 shape: a function designator of the wrong type).
func isFuncConstant(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.Ident:
		return x.Sym != nil && x.Sym.Kind == minic.SymFunc
	case *minic.Unary:
		if x.Op == minic.AMP {
			return isFuncConstant(x.X)
		}
	case *minic.Cast:
		return isFuncConstant(x.X)
	case *minic.ImplicitCast:
		return isFuncConstant(x.X)
	}
	return false
}

// isIntLiteral matches literal scalars (NULL-style updates).
func isIntLiteral(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit:
		return true
	case *minic.Cast:
		return isIntLiteral(x.X)
	case *minic.ImplicitCast:
		return isIntLiteral(x.X)
	}
	return false
}

// classify runs the elimination pipeline on one cast. parent is the
// expression consuming the cast result (for the NF rule), or nil.
func (w *walker) classify(pos minic.Pos, from, to *ctypes.Type, inner minic.Expr,
	implicit bool, parent minic.Expr) {
	if from == nil || to == nil {
		return
	}
	if !involvesFP(from) && !involvesFP(to) {
		return // does not involve function pointer types at all
	}
	if ctypes.Equal(from, to) {
		return // identity conversions are no violation
	}
	f := Finding{Pos: pos, From: from, To: to, Implicit: implicit, Kind: KindViolation}

	fromRec, toRec := recordOf(from), recordOf(to)
	fromFP := from.IsFuncPointer()
	toFP := to.IsFuncPointer()
	isVoidPtr := func(t *ctypes.Type) bool {
		return t.Kind == ctypes.Pointer && t.Elem != nil && t.Elem.Kind == ctypes.Void
	}

	switch {
	// UC: concrete-to-abstract struct cast (abstract is a physical
	// prefix of concrete) — parametric-polymorphism emulation.
	case fromRec != nil && toRec != nil && ctypes.IsPrefixStruct(fromRec, toRec):
		f.Kind = KindUC
		f.Note = "(upcast to physical supertype)"

	// DC: abstract-to-concrete downcast with a type-tag discipline.
	case fromRec != nil && toRec != nil && ctypes.IsPrefixStruct(toRec, fromRec) &&
		hasTypeTag(fromRec):
		f.Kind = KindDC
		f.Note = "(tagged downcast)"

	// MF: malloc family returns void*; free takes void*.
	case isAllocCall(inner) && toRec != nil:
		f.Kind = KindMF
		f.Note = "(malloc result)"
	case isVoidPtr(to) && fromRec != nil && parentIsFreeCall(parent):
		f.Kind = KindMF
		f.Note = "(free argument)"

	// SU: updating a function pointer with a literal (NULL etc).
	case toFP && isIntLiteral(inner):
		f.Kind = KindSU
		f.Note = "(literal update)"

	// NF: the cast result is immediately used to access a field that
	// has no function-pointer type.
	case toRec != nil && parentAccessesNonFPField(parent, toRec):
		f.Kind = KindNF
		f.Note = "(non-fp field access)"

	// K1: a function constant of an incompatible type flows into a
	// function-pointer slot — the case that breaks the generated CFG.
	case toFP && isFuncConstant(inner) && fromFP && !ctypes.Equal(from, to):
		f.Kind = KindK1
		f.Note = "(incompatible function-pointer initialization)"
	}
	w.rep.Findings = append(w.rep.Findings, f)
}

// parentIsFreeCall reports whether the consuming expression is a call
// to free().
func parentIsFreeCall(parent minic.Expr) bool {
	call, ok := parent.(*minic.Call)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*minic.Ident)
	return ok && id.Name == "free"
}

// parentAccessesNonFPField reports the NF shape: the parent is a
// member access (directly or through one dereference) into a field
// whose type involves no function pointer.
func parentAccessesNonFPField(parent minic.Expr, rec *ctypes.Type) bool {
	m, ok := parent.(*minic.Member)
	if !ok {
		return false
	}
	fld, ok := rec.Field(m.Name)
	if !ok {
		return false
	}
	return !involvesFP(fld.Type)
}

func (w *walker) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.Block:
		for _, inner := range st.Stmts {
			w.stmt(inner)
		}
	case *minic.DeclGroup:
		for _, d := range st.Decls {
			w.stmt(d)
		}
	case *minic.ExprStmt:
		w.expr(st.X, nil)
	case *minic.DeclStmt:
		if st.Init != nil {
			w.expr(st.Init, nil)
		}
	case *minic.If:
		w.expr(st.Cond, nil)
		w.stmt(st.Then)
		w.stmt(st.Else)
	case *minic.While:
		w.expr(st.Cond, nil)
		w.stmt(st.Body)
	case *minic.DoWhile:
		w.stmt(st.Body)
		w.expr(st.Cond, nil)
	case *minic.For:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond, nil)
		}
		if st.Post != nil {
			w.expr(st.Post, nil)
		}
		w.stmt(st.Body)
	case *minic.Switch:
		w.expr(st.Cond, nil)
		for _, arm := range st.Cases {
			for _, inner := range arm.Stmts {
				w.stmt(inner)
			}
		}
	case *minic.Return:
		if st.X != nil {
			w.expr(st.X, nil)
		}
	case *minic.Label:
		w.stmt(st.Stmt)
	case *minic.AsmStmt:
		w.rep.AsmTotal++
		if len(st.Annotations) > 0 {
			w.rep.AsmAnnotated++
		}
	}
}

// expr walks an expression; parent is the consuming expression.
func (w *walker) expr(e minic.Expr, parent minic.Expr) {
	switch x := e.(type) {
	case nil:
	case *minic.Cast:
		w.classify(x.Pos, x.X.ExprType(), x.To, x.X, false, parent)
		w.expr(x.X, x)
	case *minic.ImplicitCast:
		w.classify(x.Pos, x.X.ExprType(), x.To, x.X, true, parent)
		w.expr(x.X, x)
	case *minic.Unary:
		w.expr(x.X, x)
	case *minic.Postfix:
		w.expr(x.X, x)
	case *minic.Binary:
		w.expr(x.L, x)
		w.expr(x.R, x)
	case *minic.Assign:
		w.expr(x.L, x)
		w.expr(x.R, x)
	case *minic.Cond:
		w.expr(x.C, x)
		w.expr(x.T, x)
		w.expr(x.F, x)
	case *minic.Call:
		w.expr(x.Fun, x)
		for _, a := range x.Args {
			w.expr(a, x)
		}
	case *minic.Index:
		w.expr(x.X, x)
		w.expr(x.I, x)
	case *minic.Member:
		w.expr(x.X, x)
	case *minic.InitList:
		for _, el := range x.Elems {
			w.expr(el, x)
		}
	}
}

// CountSLOC counts non-blank source lines (the Table 1 SLOC column).
func CountSLOC(src string) int {
	n := 0
	blank := true
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '\n' {
			if !blank {
				n++
			}
			blank = true
			continue
		}
		if c != ' ' && c != '\t' && c != '\r' {
			blank = false
		}
	}
	if !blank {
		n++
	}
	return n
}
