// Package verifier implements MCFI's independent modular verifier
// (paper §7): it disassembles an instrumented MCFI module — the
// auxiliary information makes complete disassembly possible — and
// checks that
//
//   - every indirect branch is instrumented with a well-formed check
//     transaction (returns are the popq/jmpq translation; PLT entries
//     reload their GOT slot on retry),
//   - no raw ret instruction survives rewriting,
//   - every memory write is sandboxed (masked, or through the trusted
//     stack/frame registers),
//   - every indirect-branch target is four-byte aligned,
//   - direct branches land on instruction boundaries, and
//   - jump-table indirect jumps (IBSwitch) follow the bounded-index
//     pattern with all table entries at instruction boundaries.
//
// The verifier removes the rewriter (and the compiler behind it) from
// the trusted computing base: a module that passes these checks cannot
// escape the CFG that the ID tables encode, no matter which toolchain
// produced it.
package verifier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// Error is one verification finding.
type Error struct {
	Offset int
	Msg    string
}

func (e *Error) Error() string { return fmt.Sprintf("offset %#x: %s", e.Offset, e.Msg) }

const maxFindings = 50

type verifier struct {
	obj        *module.Object
	boundaries map[int]bool
	instrs     map[int]visa.Instr // offset -> instruction
	prev       map[int]int        // offset -> offset of previous instruction
	ibAt       map[int]*module.IndirectBranch
	relocSites map[int]bool // offsets of rel32 fields patched by the linker
	findings   []error
}

// Verify checks one instrumented MCFI module.
func Verify(obj *module.Object) error {
	if !obj.Instrumented {
		return fmt.Errorf("verifier: module %q is not instrumented", obj.Name)
	}
	v := &verifier{
		obj:        obj,
		boundaries: map[int]bool{},
		instrs:     map[int]visa.Instr{},
		prev:       map[int]int{},
		ibAt:       map[int]*module.IndirectBranch{},
		relocSites: map[int]bool{},
	}
	for i := range obj.Aux.IBs {
		ib := &obj.Aux.IBs[i]
		v.ibAt[ib.Offset] = ib
	}
	for _, r := range obj.CodeRelocs {
		if r.Kind == module.RelCall32 {
			v.relocSites[r.Offset] = true
		}
	}

	v.disassemble()
	v.checkIndirectBranches()
	v.checkStores()
	v.checkDirectBranches()
	v.checkAlignment()
	v.checkSwitches()

	if len(v.findings) > 0 {
		return errors.Join(v.findings...)
	}
	return nil
}

func (v *verifier) errf(off int, format string, args ...interface{}) {
	if len(v.findings) < maxFindings {
		v.findings = append(v.findings, &Error{Offset: off, Msg: fmt.Sprintf(format, args...)})
	}
}

// skipRanges returns the sorted jump-table byte ranges embedded in the
// code, which the disassembler must step over.
func (v *verifier) skipRanges() [][2]int {
	var rs [][2]int
	for _, ib := range v.obj.Aux.IBs {
		if ib.TableLen > 0 {
			rs = append(rs, [2]int{ib.TableOff, ib.TableOff + ib.TableLen})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	return rs
}

// disassemble decodes the whole code section, skipping jump tables.
// Complete disassembly is the property the aux info buys (paper §7).
func (v *verifier) disassemble() {
	skips := v.skipRanges()
	si := 0
	off := 0
	prev := -1
	code := v.obj.Code
	for off < len(code) {
		for si < len(skips) && off >= skips[si][1] {
			si++
		}
		if si < len(skips) && off >= skips[si][0] {
			off = skips[si][1]
			prev = -1 // no pattern may span a table
			continue
		}
		ins, n, err := visa.Decode(code, off)
		if err != nil {
			v.errf(off, "disassembly failed: %v", err)
			return
		}
		v.boundaries[off] = true
		v.instrs[off] = ins
		if prev >= 0 {
			v.prev[off] = prev
		} else {
			v.prev[off] = -1
		}
		prev = off
		off += n
	}
}

// expect matches one instruction at off and returns the next offset.
type matcher struct {
	v   *verifier
	off int
	ok  bool
}

func (m *matcher) expect(pred func(visa.Instr) bool, what string) visa.Instr {
	if !m.ok {
		return visa.Instr{}
	}
	ins, found := m.v.instrs[m.off]
	if !found {
		m.v.errf(m.off, "check transaction: expected %s at a non-boundary", what)
		m.ok = false
		return visa.Instr{}
	}
	if !pred(ins) {
		m.v.errf(m.off, "check transaction: expected %s, found %q", what, ins.String())
		m.ok = false
		return visa.Instr{}
	}
	m.off += ins.Size()
	return ins
}

func opIs(op visa.Op) func(visa.Instr) bool {
	return func(i visa.Instr) bool { return i.Op == op }
}

// checkIndirectBranches verifies every instrumented-branch site and
// rejects stray indirect branches and raw rets.
func (v *verifier) checkIndirectBranches() {
	// Every decoded indirect branch must be an aux-declared site.
	for off, ins := range v.instrs {
		switch ins.Op {
		case visa.RET:
			v.errf(off, "raw ret survived rewriting")
		case visa.CALLR, visa.JMPR, visa.JRESTORE:
			if _, declared := v.ibAt[off]; !declared {
				v.errf(off, "undeclared indirect branch %q", ins.String())
			}
		}
	}
	for _, ib := range v.obj.Aux.IBs {
		switch ib.Kind {
		case module.IBSwitch:
			continue // validated separately
		default:
			v.checkCheckedSite(ib)
		}
	}
}

// checkCheckedSite validates the Fig. 4 instruction sequence for one
// instrumented indirect branch.
func (v *verifier) checkCheckedSite(ib module.IndirectBranch) {
	if ib.TLoadIOffset < 0 {
		v.errf(ib.Offset, "%s branch lacks a check transaction", ib.Kind)
		return
	}
	tl, ok := v.instrs[ib.TLoadIOffset]
	if !ok || tl.Op != visa.TLOADI || tl.R1 != visa.R10 {
		v.errf(ib.TLoadIOffset, "%s: expected tloadi r10 at the Try point", ib.Kind)
		return
	}
	// The retry target: ordinary sites re-run from the TLOADI; PLT
	// sites re-run from the GOT reload (movi/ld64) before it.
	tryOff := ib.TLoadIOffset
	switch ib.Kind {
	case module.IBRet:
		// ... pop r11; and32 r11; Try: ...
		and := v.prev[ib.TLoadIOffset]
		if and < 0 {
			v.errf(ib.TLoadIOffset, "ret check: missing and32 before Try")
			return
		}
		if i := v.instrs[and]; i.Op != visa.AND32 || i.R1 != visa.R11 {
			v.errf(and, "ret check: expected and32 r11, found %q", i.String())
			return
		}
		pop := v.prev[and]
		if pop < 0 {
			v.errf(and, "ret check: missing pop r11")
			return
		}
		if i := v.instrs[pop]; i.Op != visa.POP || i.R1 != visa.R11 {
			v.errf(pop, "ret check: expected pop r11, found %q", i.String())
			return
		}
	case module.IBPLT:
		// Try: movi r11, got; ld64 r11, [r11+0]; and32 r11; ...
		and := v.prev[ib.TLoadIOffset]
		ld := -1
		movi := -1
		if and >= 0 {
			ld = v.prev[and]
		}
		if ld >= 0 {
			movi = v.prev[ld]
		}
		if and < 0 || ld < 0 || movi < 0 {
			v.errf(ib.TLoadIOffset, "plt check: truncated preamble")
			return
		}
		if i := v.instrs[and]; i.Op != visa.AND32 || i.R1 != visa.R11 {
			v.errf(and, "plt check: expected and32 r11")
			return
		}
		if i := v.instrs[ld]; i.Op != visa.LD64 || i.R1 != visa.R11 || i.R2 != visa.R11 || i.Imm != 0 {
			v.errf(ld, "plt check: expected ld64 r11, [r11+0]")
			return
		}
		if i := v.instrs[movi]; i.Op != visa.MOVI || i.R1 != visa.R11 || int(i.Imm) != ib.GotSlot {
			v.errf(movi, "plt check: expected movi r11, <got slot %#x>", ib.GotSlot)
			return
		}
		tryOff = movi // retry must reload the GOT entry (paper §5.2)
	default:
		// icall/tailjmp/longjmp: and32 r11; Try: ...
		and := v.prev[ib.TLoadIOffset]
		if and < 0 {
			v.errf(ib.TLoadIOffset, "%s check: missing and32 before Try", ib.Kind)
			return
		}
		if i := v.instrs[and]; i.Op != visa.AND32 || i.R1 != visa.R11 {
			v.errf(and, "%s check: expected and32 r11, found %q", ib.Kind, i.String())
			return
		}
	}

	m := &matcher{v: v, off: ib.TLoadIOffset, ok: true}
	m.expect(opIs(visa.TLOADI), "tloadi r10")
	m.expect(func(i visa.Instr) bool {
		return i.Op == visa.TLOAD && i.R1 == visa.R9 && i.R2 == visa.R11
	}, "tload r9, r11")
	m.expect(func(i visa.Instr) bool {
		return i.Op == visa.CMP && i.R1 == visa.R10 && i.R2 == visa.R9
	}, "cmp r10, r9")
	je := m.expect(opIs(visa.JE), "je Ok")
	jeAt := m.off - je.Size()
	m.expect(func(i visa.Instr) bool {
		return i.Op == visa.TESTB && i.R1 == visa.R9 && i.Imm == 1
	}, "testb r9, 1")
	jz := m.expect(opIs(visa.JE), "jz Halt")
	jzAt := m.off - jz.Size()
	m.expect(func(i visa.Instr) bool {
		return i.Op == visa.CMPW && i.R1 == visa.R10 && i.R2 == visa.R9
	}, "cmpw r10, r9")
	jne := m.expect(opIs(visa.JNE), "jne Try")
	jneAt := m.off - jne.Size()
	hltAt := m.off
	m.expect(opIs(visa.HLT), "hlt")
	okAt := m.off
	if !m.ok {
		return
	}
	// Control-flow arithmetic of the pattern.
	if jeAt+je.Size()+int(je.Imm) != okAt {
		v.errf(jeAt, "je must target the Ok label")
	}
	if jzAt+jz.Size()+int(jz.Imm) != hltAt {
		v.errf(jzAt, "jz must target the Halt label")
	}
	if jneAt+jne.Size()+int(jne.Imm) != tryOff {
		v.errf(jneAt, "jne must retry the transaction (target %#x, want %#x)",
			jneAt+jne.Size()+int(jne.Imm), tryOff)
	}
	// NOP padding then the branch itself.
	off := okAt
	for off < ib.Offset {
		if i, ok := v.instrs[off]; ok && i.Op == visa.NOP {
			off += i.Size()
			continue
		}
		v.errf(off, "unexpected instruction between check and branch")
		return
	}
	br, ok := v.instrs[ib.Offset]
	if !ok {
		v.errf(ib.Offset, "branch is not at an instruction boundary")
		return
	}
	switch ib.Kind {
	case module.IBRet, module.IBTailJmp, module.IBPLT:
		if br.Op != visa.JMPR || br.R1 != visa.R11 {
			v.errf(ib.Offset, "%s: expected jmpr r11, found %q", ib.Kind, br.String())
		}
	case module.IBCall:
		if br.Op != visa.CALLR || br.R1 != visa.R11 {
			v.errf(ib.Offset, "icall: expected callr r11, found %q", br.String())
		}
	case module.IBLongjmp:
		if br.Op != visa.JRESTORE || br.R3 != visa.R11 {
			v.errf(ib.Offset, "longjmp: expected jrestore *, *, r11, found %q", br.String())
		}
	}
}

// checkStores requires every memory write to be sandboxed: through the
// stack or frame register, or masked by an immediately preceding
// "andi base, StoreMask" with a bounded displacement. Profile32
// modules are exempt — their sandbox is memory segmentation (paper
// §5.1), enforced by the runtime's page protections rather than by
// instrumentation.
func (v *verifier) checkStores() {
	if v.obj.Profile == visa.Profile32 {
		return
	}
	for off, ins := range v.instrs {
		if !ins.IsStore() {
			continue
		}
		base := ins.R2
		if base == visa.SP || base == visa.FP {
			continue
		}
		if ins.Imm > visa.MaxStoreDisp || ins.Imm < -visa.MaxStoreDisp {
			v.errf(off, "store displacement %d exceeds the sandbox guard", ins.Imm)
			continue
		}
		p := v.prev[off]
		if p < 0 {
			v.errf(off, "unsandboxed store %q", ins.String())
			continue
		}
		prev := v.instrs[p]
		if prev.Op != visa.ANDI || prev.R1 != base || prev.Imm != visa.StoreMask {
			v.errf(off, "store %q not preceded by its sandbox mask", ins.String())
		}
	}
}

// checkDirectBranches validates that relative branches land on
// instruction boundaries (linker-patched sites are exempt at module
// granularity).
func (v *verifier) checkDirectBranches() {
	for off, ins := range v.instrs {
		switch ins.Op {
		case visa.JMP, visa.JE, visa.JNE, visa.JL, visa.JG, visa.JLE,
			visa.JGE, visa.JB, visa.JA, visa.JBE, visa.JAE, visa.CALL:
			if v.relocSites[off+1] {
				continue // target patched at link time
			}
			target := off + ins.Size() + int(ins.Imm)
			if !v.boundaries[target] {
				v.errf(off, "direct branch %q targets a non-boundary %#x", ins.String(), target)
			}
		}
	}
}

// checkAlignment enforces 4-byte alignment of every indirect-branch
// target (paper §5.1).
func (v *verifier) checkAlignment() {
	for _, f := range v.obj.Aux.Funcs {
		if f.AddrTaken && f.Offset%4 != 0 {
			v.errf(f.Offset, "address-taken function %q is not 4-byte aligned", f.Name)
		}
	}
	for _, rs := range v.obj.Aux.RetSites {
		if rs.Offset%4 != 0 {
			v.errf(rs.Offset, "return site is not 4-byte aligned")
		}
	}
	for _, sc := range v.obj.Aux.SetjmpConts {
		if sc%4 != 0 {
			v.errf(sc, "setjmp continuation is not 4-byte aligned")
		}
	}
}

// checkSwitches statically validates jump-table indirect jumps: every
// table entry must resolve to an instruction boundary inside the
// enclosing function, consistent with the declared targets (paper §6,
// following Zeng et al.).
func (v *verifier) checkSwitches() {
	for _, ib := range v.obj.Aux.IBs {
		if ib.Kind != module.IBSwitch {
			continue
		}
		if ib.TableLen == 0 || ib.TableOff+ib.TableLen > len(v.obj.Code) {
			v.errf(ib.Offset, "switch with missing or out-of-range jump table")
			continue
		}
		fn := v.obj.FuncAt(ib.Offset)
		if fn == nil {
			v.errf(ib.Offset, "switch outside any function")
			continue
		}
		n := ib.TableLen / 8
		declared := map[int]bool{}
		for _, t := range ib.Targets {
			declared[t] = true
		}
		for i := 0; i < n; i++ {
			entry := int(binary.LittleEndian.Uint64(v.obj.Code[ib.TableOff+8*i:]))
			target := fn.Offset + entry
			if !v.boundaries[target] {
				v.errf(ib.Offset, "jump-table entry %d targets non-boundary %#x", i, target)
				continue
			}
			if target < fn.Offset || target >= fn.Offset+fn.Size {
				v.errf(ib.Offset, "jump-table entry %d escapes the function", i)
			}
			if len(declared) > 0 && !declared[target] {
				v.errf(ib.Offset, "jump-table entry %d (%#x) not among declared targets", i, target)
			}
		}
	}
}
