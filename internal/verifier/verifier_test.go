package verifier_test

import (
	"strings"
	"testing"

	"mcfi/internal/module"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
)

const richSrc = `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int (*ops[2])(int, int) = {add, sub};

jmp_buf env;

int classify(int x) {
	switch (x) {
	case 0: return 1;
	case 1: return 2;
	case 2: return 3;
	case 3: return 4;
	case 4: return 5;
	default: return 0;
	}
}

int run(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = ops[i & 1](acc, classify(i & 7));
	}
	return acc;
}

int main(void) {
	if (setjmp(env) == 0) {
		int r = run(50);
		printf("%d\n", r);
		longjmp(env, r + 1);
	}
	return 0;
}`

func compileRich(t *testing.T, instrument bool) *module.Object {
	t.Helper()
	obj, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrument(instrument),
	).Compile(toolchain.Source{Name: "rich", Text: richSrc})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	obj := compileRich(t, true)
	if err := verifier.Verify(obj); err != nil {
		t.Fatalf("compiler output must verify:\n%v", err)
	}
}

func TestVerifyAcceptsLibc(t *testing.T) {
	lc, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Libc()
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(lc); err != nil {
		t.Fatalf("libc must verify:\n%v", err)
	}
}

func TestVerifyRejectsBaseline(t *testing.T) {
	obj := compileRich(t, false)
	if err := verifier.Verify(obj); err == nil {
		t.Fatal("baseline module must be rejected")
	}
}

// mutate returns a copy of obj with one byte patched.
func mutate(obj *module.Object, off int, b byte) *module.Object {
	cp := *obj
	cp.Code = append([]byte(nil), obj.Code...)
	cp.Code[off] = b
	return &cp
}

func TestVerifyDetectsRawRet(t *testing.T) {
	obj := compileRich(t, true)
	// Replace an instrumented branch (a jmpr) with ret + nop.
	var site int
	for _, ib := range obj.Aux.IBs {
		if ib.Kind == module.IBRet {
			site = ib.Offset
			break
		}
	}
	bad := mutate(obj, site, byte(visa.RET))
	bad = mutate(bad, site+1, byte(visa.NOP))
	err := verifier.Verify(bad)
	if err == nil || !strings.Contains(err.Error(), "ret") {
		t.Fatalf("want raw-ret finding, got %v", err)
	}
}

func TestVerifyDetectsMissingMask(t *testing.T) {
	obj := compileRich(t, true)
	// Find an ANDI r, StoreMask and neuter it into NOPs.
	found := false
	off := 0
	skips := map[int]int{}
	for _, ib := range obj.Aux.IBs {
		if ib.TableLen > 0 {
			skips[ib.TableOff] = ib.TableLen
		}
	}
	for off < len(obj.Code) {
		if n, isTable := skips[off]; isTable {
			off += n
			continue
		}
		ins, n, err := visa.Decode(obj.Code, off)
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		if ins.Op == visa.ANDI && ins.Imm == visa.StoreMask {
			bad := obj
			for b := 0; b < n; b++ {
				bad = mutate(bad, off+b, byte(visa.NOP))
			}
			if err := verifier.Verify(bad); err == nil ||
				!strings.Contains(err.Error(), "mask") {
				t.Fatalf("want missing-mask finding, got %v", err)
			}
			found = true
			break
		}
		off += n
	}
	if !found {
		t.Fatal("no store mask found to remove — instrumentation missing?")
	}
}

func TestVerifyDetectsTamperedCheck(t *testing.T) {
	obj := compileRich(t, true)
	// Corrupt a check transaction: overwrite the CMP after the TLOAD.
	var tloadi int
	for _, ib := range obj.Aux.IBs {
		if ib.TLoadIOffset >= 0 {
			tloadi = ib.TLoadIOffset
			break
		}
	}
	// tloadi(6) + tload(3) = offset of cmp; replace with mov r10, r9
	cmpOff := tloadi + 6 + 3
	bad := mutate(obj, cmpOff, byte(visa.MOV))
	if err := verifier.Verify(bad); err == nil {
		t.Fatal("tampered check transaction must be rejected")
	}
}

func TestVerifyDetectsMisalignedTarget(t *testing.T) {
	obj := compileRich(t, true)
	cp := *obj
	cp.Aux.RetSites = append([]module.RetSite(nil), obj.Aux.RetSites...)
	cp.Aux.RetSites[0].Offset++ // force misalignment claim
	err := verifier.Verify(&cp)
	if err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Fatalf("want alignment finding, got %v", err)
	}
}

func TestVerifyDetectsCorruptJumpTable(t *testing.T) {
	obj := compileRich(t, true)
	var tableOff int
	for _, ib := range obj.Aux.IBs {
		if ib.Kind == module.IBSwitch && ib.TableLen > 0 {
			tableOff = ib.TableOff
			break
		}
	}
	if tableOff == 0 {
		t.Skip("no jump table in this build")
	}
	// Point the first entry somewhere absurd.
	bad := mutate(obj, tableOff, 0xFF)
	bad = mutate(bad, tableOff+1, 0xFF)
	if err := verifier.Verify(bad); err == nil {
		t.Fatal("corrupt jump table must be rejected")
	}
}

func TestVerifyDetectsUndeclaredIndirectBranch(t *testing.T) {
	obj := compileRich(t, true)
	// Drop one IB record so its branch becomes undeclared.
	cp := *obj
	cp.Aux.IBs = cp.Aux.IBs[1:]
	err := verifier.Verify(&cp)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("want undeclared-branch finding, got %v", err)
	}
}

func TestVerifyAcceptsBothProfiles(t *testing.T) {
	for _, p := range []visa.Profile{visa.Profile32, visa.Profile64} {
		obj, err := toolchain.New(
			toolchain.WithProfile(p),
			toolchain.WithInstrumentation(),
		).Compile(toolchain.Source{Name: "rich", Text: richSrc})
		if err != nil {
			t.Fatal(err)
		}
		if err := verifier.Verify(obj); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
