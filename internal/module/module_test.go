package module

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"mcfi/internal/visa"
)

func sampleObject() *Object {
	return &Object{
		Name:         "libfoo",
		Profile:      visa.Profile64,
		Instrumented: true,
		Code:         []byte{0x02, 0x00, 1, 2, 3, 4, 5, 6, 7, 8, 0x28},
		Data:         []byte("hello\x00"),
		BSS:          128,
		CodeRelocs: []Reloc{
			{Offset: 2, Symbol: "g_table", Addend: 16},
			{Offset: 20, Symbol: "printf", Kind: RelCall32},
		},
		DataRelocs: []Reloc{
			{Offset: 0, Symbol: "main", Addend: 0},
		},
		Symbols: []Symbol{
			{Name: "main", Kind: SymFunc, Offset: 0, Size: 11},
			{Name: "g_table", Kind: SymData, Offset: 0, Size: 6},
			{Name: "hidden", Kind: SymData, Offset: 6, Size: 8, Local: true},
		},
		Undefined: []string{"printf", "malloc"},
		Aux: AuxInfo{
			Funcs: []FuncInfo{
				{Name: "main", Offset: 0, Size: 11, Sig: "f(i,)->i",
					AddrTaken: true, TailCalls: []string{"helper"},
					TailSigs: []string{"f(i,)->v"}},
			},
			IBs: []IndirectBranch{
				{Offset: 10, Kind: IBRet, Func: "main", TLoadIOffset: 4, GotSlot: -1},
				{Offset: 5, Kind: IBSwitch, Func: "main", Targets: []int{1, 2, 3}, TLoadIOffset: -1, GotSlot: -1},
				{Offset: 7, Kind: IBCall, Func: "main", FpSig: "f(i,)->i", TLoadIOffset: 2, GotSlot: -1},
			},
			RetSites: []RetSite{
				{Offset: 8, Callee: "helper"},
				{Offset: 12, FpSig: "f(i,)->i"},
			},
			SetjmpConts:    []int{20, 24},
			AsmAnnotations: []string{"memcpy_fast : f(*c,*c,l,)->*c"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	o := sampleObject()
	data := o.Bytes()
	got, err := Read(data)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(o, got) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, o)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("MCFI\x00\x00\x00"), // truncated header
		[]byte("MCFI\x09\x00\x00\x00" + "\x40\x00\x00\x00\x00\x00\x00\x00"), // bad version
	}
	for i, data := range cases {
		if _, err := Read(data); err == nil {
			t.Errorf("case %d: Read should fail", i)
		}
	}
	// Corrupt a valid serialization at every truncation point.
	valid := sampleObject().Bytes()
	for cut := 0; cut < len(valid)-1; cut += 7 {
		if _, err := Read(valid[:cut]); err == nil {
			t.Errorf("truncation at %d: Read should fail", cut)
		}
	}
}

func TestWriteTo(t *testing.T) {
	o := sampleObject()
	var buf bytes.Buffer
	n, err := o.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
}

func TestFindSymbol(t *testing.T) {
	o := sampleObject()
	if s := o.FindSymbol("main"); s == nil || s.Kind != SymFunc {
		t.Errorf("FindSymbol(main) = %v", s)
	}
	if s := o.FindSymbol("nonexistent"); s != nil {
		t.Errorf("FindSymbol(nonexistent) = %v, want nil", s)
	}
}

func TestFuncAt(t *testing.T) {
	o := sampleObject()
	if f := o.FuncAt(5); f == nil || f.Name != "main" {
		t.Errorf("FuncAt(5) = %v", f)
	}
	if f := o.FuncAt(11); f != nil {
		t.Errorf("FuncAt(11) = %v, want nil (past end)", f)
	}
}

func TestEmptyObjectRoundTrip(t *testing.T) {
	o := &Object{Name: "empty", Profile: visa.Profile32}
	got, err := Read(o.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "empty" || got.Profile != visa.Profile32 || got.Instrumented {
		t.Errorf("got %#v", got)
	}
}

func TestIBKindString(t *testing.T) {
	kinds := map[IBKind]string{
		IBRet: "ret", IBCall: "icall", IBTailJmp: "tailjmp",
		IBSwitch: "switch", IBLongjmp: "longjmp", IBPLT: "plt",
		IBKind(99): "?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestPropReadNeverPanics(t *testing.T) {
	// Read must be total: arbitrary bytes either parse or error, never
	// panic — the verifier consumes untrusted module files.
	f := func(data []byte) bool {
		_, _ = Read(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Also fuzz around a valid prefix.
	valid := sampleObject().Bytes()
	g := func(idx int, b byte) bool {
		if len(valid) == 0 {
			return true
		}
		mut := append([]byte(nil), valid...)
		mut[(idx%len(mut)+len(mut))%len(mut)] = b
		_, _ = Read(mut)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
