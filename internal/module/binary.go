package module

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mcfi/internal/visa"
)

// Binary container format:
//
//	magic   "MCFI"            4 bytes
//	version u32               currently 1
//	profile u32               32 or 64
//	flags   u32               bit 0: instrumented
//	...sections, each:  tag u32, length u32, payload
//
// All integers are little-endian. Strings are u32 length + bytes.
// The format is hand-rolled (no gob/json) so the verifier can parse
// modules without trusting the producing toolchain's Go types.

const (
	magic      = "MCFI"
	version    = 2
	secName    = 1
	secCode    = 2
	secData    = 3
	secSymbols = 4
	secRelocs  = 5
	secAux     = 6
	secEnd     = 0xFFFF
)

type writer struct {
	buf bytes.Buffer
	err error
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

// WriteTo serializes the object to w.
func (o *Object) WriteTo(out io.Writer) (int64, error) {
	var w writer
	w.buf.WriteString(magic)
	w.u32(version)
	w.u32(uint32(o.Profile))
	flags := uint32(0)
	if o.Instrumented {
		flags |= 1
	}
	w.u32(flags)

	section := func(tag uint32, body func(*writer)) {
		var sw writer
		body(&sw)
		w.u32(tag)
		w.bytes(sw.buf.Bytes())
	}

	section(secName, func(sw *writer) {
		sw.str(o.Name)
	})
	section(secCode, func(sw *writer) {
		sw.bytes(o.Code)
	})
	section(secData, func(sw *writer) {
		sw.bytes(o.Data)
		sw.u32(uint32(o.BSS))
	})
	section(secSymbols, func(sw *writer) {
		sw.u32(uint32(len(o.Symbols)))
		for _, s := range o.Symbols {
			sw.str(s.Name)
			sw.buf.WriteByte(byte(s.Kind))
			local := byte(0)
			if s.Local {
				local = 1
			}
			sw.buf.WriteByte(local)
			sw.u32(uint32(s.Offset))
			sw.u32(uint32(s.Size))
		}
		sw.u32(uint32(len(o.Undefined)))
		for _, u := range o.Undefined {
			sw.str(u)
		}
	})
	section(secRelocs, func(sw *writer) {
		writeRelocs := func(rs []Reloc) {
			sw.u32(uint32(len(rs)))
			for _, r := range rs {
				sw.u32(uint32(r.Offset))
				sw.str(r.Symbol)
				sw.u64(uint64(r.Addend))
				sw.buf.WriteByte(byte(r.Kind))
			}
		}
		writeRelocs(o.CodeRelocs)
		writeRelocs(o.DataRelocs)
	})
	section(secAux, func(sw *writer) {
		writeAux(sw, &o.Aux)
	})
	w.u32(secEnd)
	w.u32(0)

	n, err := out.Write(w.buf.Bytes())
	return int64(n), err
}

// writeAux serializes aux info in the secAux payload encoding. It is
// shared with the linker's image format (linker images embed the same
// merged AuxInfo), so the two containers stay byte-compatible.
func writeAux(sw *writer, aux *AuxInfo) {
	sw.u32(uint32(len(aux.Funcs)))
	for _, f := range aux.Funcs {
		sw.str(f.Name)
		sw.u32(uint32(f.Offset))
		sw.u32(uint32(f.Size))
		sw.str(f.Sig)
		at := byte(0)
		if f.AddrTaken {
			at = 1
		}
		sw.buf.WriteByte(at)
		sw.u32(uint32(len(f.TailCalls)))
		for _, t := range f.TailCalls {
			sw.str(t)
		}
		sw.u32(uint32(len(f.TailSigs)))
		for _, t := range f.TailSigs {
			sw.str(t)
		}
	}
	sw.u32(uint32(len(aux.IBs)))
	for _, ib := range aux.IBs {
		sw.u32(uint32(ib.Offset))
		sw.buf.WriteByte(byte(ib.Kind))
		sw.str(ib.Func)
		sw.str(ib.FpSig)
		sw.u32(uint32(len(ib.Targets)))
		for _, t := range ib.Targets {
			sw.u32(uint32(t))
		}
		sw.u64(uint64(int64(ib.TLoadIOffset)))
		sw.u64(uint64(int64(ib.CheckStart)))
		sw.u64(uint64(int64(ib.GotSlot)))
		sw.u32(uint32(ib.TableOff))
		sw.u32(uint32(ib.TableLen))
		sw.str(ib.PLTSym)
	}
	sw.u32(uint32(len(aux.RetSites)))
	for _, rs := range aux.RetSites {
		sw.u32(uint32(rs.Offset))
		sw.str(rs.Callee)
		sw.str(rs.FpSig)
	}
	sw.u32(uint32(len(aux.SetjmpConts)))
	for _, c := range aux.SetjmpConts {
		sw.u32(uint32(c))
	}
	sw.u32(uint32(len(aux.AsmAnnotations)))
	for _, a := range aux.AsmAnnotations {
		sw.str(a)
	}
}

// MarshalAux serializes aux info as a standalone payload (the secAux
// section encoding). The linker's image container embeds this payload
// for its merged aux info, so both formats share one aux codec.
func MarshalAux(aux *AuxInfo) []byte {
	var sw writer
	writeAux(&sw, aux)
	return sw.buf.Bytes()
}

// UnmarshalAux parses a payload produced by MarshalAux.
func UnmarshalAux(data []byte) (AuxInfo, error) {
	var aux AuxInfo
	if err := readAux(&reader{b: data}, &aux); err != nil {
		return AuxInfo{}, err
	}
	return aux, nil
}

// Bytes serializes the object to a byte slice.
func (o *Object) Bytes() []byte {
	var buf bytes.Buffer
	o.WriteTo(&buf) //nolint:errcheck // bytes.Buffer cannot fail
	return buf.Bytes()
}

type reader struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("module: truncated input")

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.b) {
		return "", errTruncated
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+int(n) > len(r.b) {
		return nil, errTruncated
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:])
	r.off += int(n)
	return b, nil
}

// Read parses a serialized module.
func Read(data []byte) (*Object, error) {
	r := &reader{b: data}
	if len(data) < 16 || string(data[:4]) != magic {
		return nil, fmt.Errorf("module: bad magic")
	}
	r.off = 4
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("module: unsupported version %d", ver)
	}
	prof, err := r.u32()
	if err != nil {
		return nil, err
	}
	if prof != 32 && prof != 64 {
		return nil, fmt.Errorf("module: bad profile %d", prof)
	}
	flags, err := r.u32()
	if err != nil {
		return nil, err
	}
	o := &Object{Profile: visa.Profile(prof), Instrumented: flags&1 != 0}

	for {
		tag, err := r.u32()
		if err != nil {
			return nil, err
		}
		if tag == secEnd {
			if _, err := r.u32(); err != nil {
				return nil, err
			}
			break
		}
		payload, err := r.bytes()
		if err != nil {
			return nil, err
		}
		sr := &reader{b: payload}
		switch tag {
		case secName:
			if o.Name, err = sr.str(); err != nil {
				return nil, err
			}
		case secCode:
			if o.Code, err = sr.bytes(); err != nil {
				return nil, err
			}
		case secData:
			if o.Data, err = sr.bytes(); err != nil {
				return nil, err
			}
			bss, err := sr.u32()
			if err != nil {
				return nil, err
			}
			o.BSS = int(bss)
		case secSymbols:
			if err := readSymbols(sr, o); err != nil {
				return nil, err
			}
		case secRelocs:
			if err := readRelocs(sr, o); err != nil {
				return nil, err
			}
		case secAux:
			if err := readAux(sr, &o.Aux); err != nil {
				return nil, err
			}
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
	return o, nil
}

func readSymbols(sr *reader, o *Object) error {
	n, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var s Symbol
		if s.Name, err = sr.str(); err != nil {
			return err
		}
		k, err := sr.byte()
		if err != nil {
			return err
		}
		s.Kind = SymKind(k)
		loc, err := sr.byte()
		if err != nil {
			return err
		}
		s.Local = loc != 0
		off, err := sr.u32()
		if err != nil {
			return err
		}
		sz, err := sr.u32()
		if err != nil {
			return err
		}
		s.Offset, s.Size = int(off), int(sz)
		o.Symbols = append(o.Symbols, s)
	}
	nu, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nu; i++ {
		u, err := sr.str()
		if err != nil {
			return err
		}
		o.Undefined = append(o.Undefined, u)
	}
	return nil
}

func readRelocs(sr *reader, o *Object) error {
	read := func() ([]Reloc, error) {
		n, err := sr.u32()
		if err != nil {
			return nil, err
		}
		var rs []Reloc
		for i := uint32(0); i < n; i++ {
			var rl Reloc
			off, err := sr.u32()
			if err != nil {
				return nil, err
			}
			rl.Offset = int(off)
			if rl.Symbol, err = sr.str(); err != nil {
				return nil, err
			}
			add, err := sr.u64()
			if err != nil {
				return nil, err
			}
			rl.Addend = int64(add)
			k, err := sr.byte()
			if err != nil {
				return nil, err
			}
			rl.Kind = RelocKind(k)
			rs = append(rs, rl)
		}
		return rs, nil
	}
	var err error
	if o.CodeRelocs, err = read(); err != nil {
		return err
	}
	o.DataRelocs, err = read()
	return err
}

func readAux(sr *reader, aux *AuxInfo) error {
	nf, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nf; i++ {
		var f FuncInfo
		if f.Name, err = sr.str(); err != nil {
			return err
		}
		off, err := sr.u32()
		if err != nil {
			return err
		}
		sz, err := sr.u32()
		if err != nil {
			return err
		}
		f.Offset, f.Size = int(off), int(sz)
		if f.Sig, err = sr.str(); err != nil {
			return err
		}
		at, err := sr.byte()
		if err != nil {
			return err
		}
		f.AddrTaken = at != 0
		ntc, err := sr.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < ntc; j++ {
			t, err := sr.str()
			if err != nil {
				return err
			}
			f.TailCalls = append(f.TailCalls, t)
		}
		nts, err := sr.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nts; j++ {
			t, err := sr.str()
			if err != nil {
				return err
			}
			f.TailSigs = append(f.TailSigs, t)
		}
		aux.Funcs = append(aux.Funcs, f)
	}
	nib, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nib; i++ {
		var ib IndirectBranch
		off, err := sr.u32()
		if err != nil {
			return err
		}
		ib.Offset = int(off)
		k, err := sr.byte()
		if err != nil {
			return err
		}
		ib.Kind = IBKind(k)
		if ib.Func, err = sr.str(); err != nil {
			return err
		}
		if ib.FpSig, err = sr.str(); err != nil {
			return err
		}
		nt, err := sr.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nt; j++ {
			t, err := sr.u32()
			if err != nil {
				return err
			}
			ib.Targets = append(ib.Targets, int(t))
		}
		tl, err := sr.u64()
		if err != nil {
			return err
		}
		ib.TLoadIOffset = int(int64(tl))
		cs, err := sr.u64()
		if err != nil {
			return err
		}
		ib.CheckStart = int(int64(cs))
		gs, err := sr.u64()
		if err != nil {
			return err
		}
		ib.GotSlot = int(int64(gs))
		to, err := sr.u32()
		if err != nil {
			return err
		}
		tl2, err := sr.u32()
		if err != nil {
			return err
		}
		ib.TableOff, ib.TableLen = int(to), int(tl2)
		if ib.PLTSym, err = sr.str(); err != nil {
			return err
		}
		aux.IBs = append(aux.IBs, ib)
	}
	nrs, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nrs; i++ {
		var rs RetSite
		off, err := sr.u32()
		if err != nil {
			return err
		}
		rs.Offset = int(off)
		if rs.Callee, err = sr.str(); err != nil {
			return err
		}
		if rs.FpSig, err = sr.str(); err != nil {
			return err
		}
		aux.RetSites = append(aux.RetSites, rs)
	}
	nsc, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nsc; i++ {
		c, err := sr.u32()
		if err != nil {
			return err
		}
		aux.SetjmpConts = append(aux.SetjmpConts, int(c))
	}
	naa, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < naa; i++ {
		a, err := sr.str()
		if err != nil {
			return err
		}
		aux.AsmAnnotations = append(aux.AsmAnnotations, a)
	}
	return nil
}
