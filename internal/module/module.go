// Package module defines the MCFI object-module format.
//
// An MCFI module "not only contains code and data, but also auxiliary
// information" (paper §4): the types of its functions and function
// pointers, the location and kind of every indirect branch, every
// indirect-branch target, and relocations. The auxiliary information is
// what lets modules be instrumented separately and linked later —
// statically by internal/linker or dynamically by internal/loader —
// with the combined module's CFG generated at link time from the merged
// aux info (paper §6).
package module

import "mcfi/internal/visa"

// SymKind distinguishes function and data symbols.
type SymKind byte

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymData
)

// Symbol is a defined symbol in a module.
type Symbol struct {
	Name string
	Kind SymKind
	// Offset is relative to the code section (SymFunc) or the data
	// section (SymData). Data symbols with Offset >= len(Data) live in
	// zero-initialized space (BSS).
	Offset int
	Size   int
	// Local symbols (C static) do not participate in cross-module
	// resolution.
	Local bool
}

// RelocKind selects how a relocation patches its site.
type RelocKind byte

// Relocation kinds.
const (
	// RelAbs64 patches an absolute 64-bit field (MOVI immediates, data
	// pointers) with the address of Symbol plus Addend.
	RelAbs64 RelocKind = iota
	// RelCall32 patches the rel32 displacement of a direct CALL or JMP
	// so it reaches Symbol (possibly via a PLT entry); Offset is the
	// offset of the 4-byte displacement field, whose value becomes
	// target - (Offset + 4).
	RelCall32
	// RelJumpTable patches like RelAbs64 but does NOT mark the
	// referenced function address-taken: it is the jump-table base
	// materialization inside the function's own switch lowering, not a
	// function-pointer use.
	RelJumpTable
)

// Reloc patches a field at Offset in the code or data section with the
// final address of Symbol plus Addend, as directed by Kind.
type Reloc struct {
	Offset int
	Symbol string
	Addend int64
	Kind   RelocKind
}

// IBKind classifies indirect branches for CFG generation and
// verification.
type IBKind byte

// Indirect branch kinds (paper §6).
const (
	// IBRet is a return (instrumented to pop+checked-jump).
	IBRet IBKind = iota
	// IBCall is an indirect call through a function pointer.
	IBCall
	// IBTailJmp is an interprocedural indirect jump implementing an
	// indirect tail call.
	IBTailJmp
	// IBSwitch is an intraprocedural indirect jump through a read-only
	// jump table; it is statically verified rather than instrumented.
	IBSwitch
	// IBLongjmp is the indirect jump performed by longjmp.
	IBLongjmp
	// IBPLT is the indirect jump in a PLT entry (emitted by the static
	// linker); its target is reloaded from the GOT on transaction retry.
	IBPLT
)

// String names the IB kind.
func (k IBKind) String() string {
	switch k {
	case IBRet:
		return "ret"
	case IBCall:
		return "icall"
	case IBTailJmp:
		return "tailjmp"
	case IBSwitch:
		return "switch"
	case IBLongjmp:
		return "longjmp"
	case IBPLT:
		return "plt"
	}
	return "?"
}

// IndirectBranch describes one indirect branch site in the code.
type IndirectBranch struct {
	// Offset of the *branch instruction itself* (the jmpr/callr/
	// jrestore), relative to the code section.
	Offset int
	Kind   IBKind
	// Func is the enclosing function's symbol name (for IBRet: returns
	// of this function; used to build return edges).
	Func string
	// FpSig is the ctypes.Signature of the function-pointer pointee
	// type for IBCall and IBTailJmp.
	FpSig string
	// Targets lists code offsets reachable through a jump table
	// (IBSwitch only).
	Targets []int
	// TableOff/TableLen locate the read-only jump table bytes inside
	// the code section (IBSwitch only; the verifier skips this range
	// when disassembling and validates the entries against Targets).
	TableOff int
	TableLen int
	// TLoadIOffset is the code offset of the TLOADI instruction whose
	// imm32 the loader patches with the branch's Bary table index
	// (instrumented kinds only; -1 if absent).
	TLoadIOffset int
	// CheckStart is the code offset of the first instruction (the and32
	// mask) of the canonical rewrite.CheckSeqSize-byte check transaction
	// guarding this branch, when the site carries one in the canonical
	// shape; -1 for uninstrumented sites and non-canonical variants
	// (the PLT stub reloads the GOT inside its retry loop). A fusing VM
	// engine may replace the span with one superinstruction.
	CheckStart int
	// GotSlot is the data offset of the GOT entry read by an IBPLT
	// entry (-1 otherwise).
	GotSlot int
	// PLTSym is the imported symbol name an IBPLT entry forwards to;
	// its only legal target is that symbol's eventual definition.
	PLTSym string
}

// RetSite is an address immediately following a call instruction — an
// indirect-branch target for returns.
type RetSite struct {
	// Offset of the (4-byte aligned, in instrumented builds) return
	// address in the code section.
	Offset int
	// Callee is the direct callee's symbol name; empty for indirect
	// calls.
	Callee string
	// FpSig is the function-pointer pointee signature for indirect
	// calls; empty for direct calls.
	FpSig string
	// TailTargets, for a direct call whose callee performs tail calls,
	// is unused at codegen time; tail-call chasing happens in the CFG
	// generator from FuncInfo.TailCalls.
	_ struct{}
}

// FuncInfo is the auxiliary type record of one function (paper §6: "an
// MCFI module comes with the types of its functions and its function
// pointers").
type FuncInfo struct {
	Name   string
	Offset int
	Size   int
	// Sig is the ctypes.Signature of the function's type.
	Sig string
	// AddrTaken marks functions whose address is taken in this module.
	AddrTaken bool
	// TailCalls lists direct tail-call targets (symbol names) and
	// whether the function makes indirect tail calls (via TailSigs).
	TailCalls []string
	// TailSigs lists fp signatures of indirect tail calls made by this
	// function.
	TailSigs []string
}

// AuxInfo is the module's CFG-generation payload.
type AuxInfo struct {
	Funcs       []FuncInfo
	IBs         []IndirectBranch
	RetSites    []RetSite
	SetjmpConts []int // code offsets of setjmp continuation points
	// AsmAnnotations carries "name : type-signature" annotations for
	// inline assembly (paper §6 condition C2 handling).
	AsmAnnotations []string
}

// Object is one compiled, not-yet-linked MCFI module.
type Object struct {
	Name    string
	Profile visa.Profile
	// Instrumented records whether check transactions and alignment
	// no-ops were emitted (false for baseline builds used in the
	// overhead experiments).
	Instrumented bool

	Code []byte
	Data []byte
	// BSS is the size of zero-initialized data placed after Data.
	BSS int

	CodeRelocs []Reloc
	DataRelocs []Reloc
	Symbols    []Symbol
	// Undefined lists referenced but not defined symbols (imports).
	Undefined []string
	Aux       AuxInfo
}

// FindSymbol returns the symbol with the given name, or nil.
func (o *Object) FindSymbol(name string) *Symbol {
	for i := range o.Symbols {
		if o.Symbols[i].Name == name {
			return &o.Symbols[i]
		}
	}
	return nil
}

// FuncAt returns the FuncInfo containing the given code offset, or nil.
func (o *Object) FuncAt(off int) *FuncInfo {
	for i := range o.Aux.Funcs {
		f := &o.Aux.Funcs[i]
		if off >= f.Offset && off < f.Offset+f.Size {
			return f
		}
	}
	return nil
}
