// Race-hardening test for the block-compiler engine, the next rung
// after threaded_race_test.go: an instrumented workload runs on
// EngineBlockJIT with a compile-eager threshold — so hot blocks are
// genuinely compiled and dispatched — while a host goroutine issues
// table update transactions as fast as it can. Every update bumps the
// check epoch, so under `go test -race` this exercises concurrent
// block compilation, epoch-stamped dispatch, discard-and-recompile,
// and jit-page invalidation against the storm. A compiled block that
// survived an epoch bump would replay a stale check verdict; the
// differential assertion against the interpreter catches exactly
// that.
package mcfi

import (
	"sync"
	"testing"

	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

func TestBlockJITEngineUnderUpdateStorm(t *testing.T) {
	w, ok := workload.ByName("sjeng")
	if !ok {
		t.Fatal("sjeng workload missing")
	}
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(w.TestSource())
	if err != nil {
		t.Fatal(err)
	}

	ref := runWithEngine(t, img, vm.EngineInterp)

	rt, err := mrt.New(img, mrt.Options{Engine: vm.EngineBlockJIT, JITThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
			}
		}
	}()
	code, err := rt.Run(2_000_000_000)
	close(stop)
	wg.Wait()

	if err != nil {
		t.Fatalf("blockjit run under updates: %v (output %q)", err, rt.Output())
	}
	if code != ref.code || rt.Output() != ref.output {
		t.Errorf("blockjit under updates diverges from interp:\n  interp:   code=%d out=%q\n  blockjit: code=%d out=%q",
			ref.code, ref.output, code, rt.Output())
	}
	st := rt.CheckStats()
	if st.JITBlocks == 0 {
		t.Errorf("no blocks compiled under the storm (threshold 4)")
	}
	if rt.Tables.Updates() >= 2 && st.JITDiscards == 0 {
		t.Errorf("%d update transactions bumped the epoch but no compiled block was discarded", rt.Tables.Updates())
	}
	t.Logf("storm: %d updates, %d blocks compiled, %d discarded, %d block runs / %d cold steps",
		rt.Tables.Updates(), st.JITBlocks, st.JITDiscards, st.JITBlockRuns, st.JITColdSteps)

	// The quiet run must be bit-identical down to instret: a compiled
	// block retires exactly the instructions it replaces.
	quiet := runWithEngine(t, img, vm.EngineBlockJIT)
	if quiet != ref {
		t.Errorf("blockjit without updates diverges from interp:\n  interp:   code=%d instret=%d\n  blockjit: code=%d instret=%d",
			ref.code, ref.instret, quiet.code, quiet.instret)
	}

	// And the quiet run's counters prove it actually ran compiled:
	// mostly hot dispatches once warm.
	rtq, err := mrt.New(img, mrt.Options{Engine: vm.EngineBlockJIT, JITThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtq.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	stq := rtq.CheckStats()
	if stq.JITBlockRuns == 0 || stq.JITBlockRuns < stq.JITColdSteps {
		t.Errorf("quiet blockjit run was not block-dominated: %d block runs vs %d cold steps",
			stq.JITBlockRuns, stq.JITColdSteps)
	}
}
