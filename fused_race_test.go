// Race-hardening test for the fused engine: a full instrumented
// workload runs on EngineFused while a host goroutine issues table
// update transactions as fast as it can — the dynamic-linking
// scenario, compressed. Under `go test -race` this exercises every
// verdict-cache/update-transaction interleaving: the epoch hook fires
// inside the update lock while guest threads read it lock-free, and
// the bounded host retry loop hands version storms back to the
// per-instruction engine.
package mcfi

import (
	"sync"
	"testing"

	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

func TestFusedEngineUnderUpdateStorm(t *testing.T) {
	w, ok := workload.ByName("sjeng")
	if !ok {
		t.Fatal("sjeng workload missing")
	}
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(w.TestSource())
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: interp engine, no updates.
	ref := runWithEngine(t, img, vm.EngineInterp)

	// Fused engine with a continuous stream of update transactions.
	rt, err := mrt.New(img, mrt.Options{Engine: vm.EngineFused})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
			}
		}
	}()
	code, err := rt.Run(2_000_000_000)
	close(stop)
	wg.Wait()

	if err != nil {
		t.Fatalf("fused run under updates: %v (output %q)", err, rt.Output())
	}
	if code != ref.code || rt.Output() != ref.output {
		t.Errorf("fused under updates diverges from interp:\n  interp: code=%d out=%q\n  fused:  code=%d out=%q",
			ref.code, ref.output, code, rt.Output())
	}
	if rt.Tables.Updates() < 2 {
		t.Logf("only %d updates raced the guest", rt.Tables.Updates())
	}

	// Without updates the retired count must be bit-identical — a
	// verdict hit retires exactly the instructions of the pass it
	// replays. (Under updates the retry counts are scheduling-
	// dependent in every engine, so only the quiet run is compared.)
	quiet := runWithEngine(t, img, vm.EngineFused)
	if quiet != ref {
		t.Errorf("fused without updates diverges from interp:\n  interp: code=%d instret=%d\n  fused:  code=%d instret=%d",
			ref.code, ref.instret, quiet.code, quiet.instret)
	}
}
