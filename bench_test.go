// Package mcfi's benchmark suite: one benchmark family per table and
// figure of the paper's evaluation (§8), plus the ablations called out
// in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use the reduced "test" workload inputs so the whole suite
// completes in minutes; cmd/mcfi-bench runs the reference inputs.
package mcfi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mcfi/internal/cfg"
	"mcfi/internal/id"
	"mcfi/internal/linker"
	"mcfi/internal/mrt"
	"mcfi/internal/rop"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// buildFor compiles and links one workload at test scale.
func buildFor(b *testing.B, name string, instrument bool) *linker.Image {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrument(instrument),
	).Build(w.TestSource())
	if err != nil {
		b.Fatal(err)
	}
	return img
}

func runImage(b *testing.B, img *linker.Image, during func(*mrt.Runtime, <-chan struct{})) int64 {
	return runImageOpts(b, img, mrt.Options{}, during)
}

func runImageOpts(b *testing.B, img *linker.Image, opts mrt.Options, during func(*mrt.Runtime, <-chan struct{})) int64 {
	b.Helper()
	rt, err := mrt.New(img, opts)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if during != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			during(rt, stop)
		}()
	}
	code, err := rt.Run(0)
	close(stop)
	wg.Wait()
	if err != nil || code != 0 {
		b.Fatalf("run: code=%d err=%v", code, err)
	}
	return rt.Instret()
}

// --- E1: Fig. 5 — per-benchmark execution cost, baseline vs MCFI ---

func benchFig5(b *testing.B, name string, instrument bool) {
	img := buildFor(b, name, instrument)
	var instr int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instr = runImage(b, img, nil)
	}
	b.ReportMetric(float64(instr), "guest-instrs")
}

func BenchmarkFig5(b *testing.B) {
	for _, w := range workload.All() {
		b.Run(w.Name+"/baseline", func(b *testing.B) { benchFig5(b, w.Name, false) })
		b.Run(w.Name+"/mcfi", func(b *testing.B) { benchFig5(b, w.Name, true) })
	}
}

// --- E2: Fig. 6 — MCFI under 50 Hz update transactions ---

func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"perlbench", "gcc", "sjeng", "lbm"} {
		b.Run(name+"/mcfi+50hz", func(b *testing.B) {
			img := buildFor(b, name, true)
			var instr int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				instr = runImage(b, img, func(rt *mrt.Runtime, stop <-chan struct{}) {
					tick := time.NewTicker(20 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case <-tick.C:
							rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
						}
					}
				})
			}
			b.ReportMetric(float64(instr), "guest-instrs")
		})
	}
}

// --- E3: §8.1 STM micro-benchmark — MCFI vs TML vs RWL vs Mutex ---

func stmTables() func(*tables.Tables) {
	return func(tb *tables.Tables) {
		tb.Update(func(addr int) int {
			if addr%64 == 0 {
				return addr/64%32 + 1
			}
			return -1
		}, func(i int) int {
			if i < 32 {
				return i + 1
			}
			return -1
		}, tables.UpdateOpts{})
	}
}

func benchChecker(b *testing.B, ck tables.Checker) {
	// A 50 Hz writer runs alongside, as in the paper's measurement.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				ck.Reversion()
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			br := i & 31
			if ck.Check(br, 64*br) != tables.Pass {
				b.Fail()
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkSTM(b *testing.B) {
	for _, ck := range tables.NewCheckers(1<<16, 64, stmTables()) {
		b.Run(ck.Name(), func(b *testing.B) { benchChecker(b, ck) })
	}
}

// --- E7/E10: Table 3 CFG generation at gcc scale (§8.2: ~150 ms) ---

func BenchmarkCFGGen(b *testing.B) {
	w, _ := workload.ByName("gcc")
	gen := workload.GenerateModule("gcc", 42, w.Gen)
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(w.TestSource(), gen)
	if err != nil {
		b.Fatal(err)
	}
	in := cfg.Input{
		Funcs: img.Aux.Funcs, IBs: img.Aux.IBs, RetSites: img.Aux.RetSites,
		SetjmpConts: img.Aux.SetjmpConts, Annotations: img.Aux.AsmAnnotations,
		Profile: img.Profile,
	}
	var g *cfg.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = cfg.Generate(in)
	}
	b.ReportMetric(float64(g.Stats.EQCs), "EQCs")
}

// --- E9: ROP gadget scanning throughput ---

func BenchmarkROPFind(b *testing.B) {
	img := buildFor(b, "gcc", false)
	b.SetBytes(int64(len(img.Code)))
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(rop.Find(img.Code, rop.DefaultMaxLen))
	}
	b.ReportMetric(float64(n), "gadgets")
}

// --- toolchain and verifier throughput ---

func BenchmarkCompileGcc(b *testing.B) {
	w, _ := workload.ByName("gcc")
	src := w.TestSource()
	tb := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyLibc(b *testing.B) {
	lc, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Libc()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(lc.Code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verifier.Verify(lc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 1: array ID tables vs a hash-map representation
// (paper §5.1 rejects the hash map for lookup cost) ---

func BenchmarkAblationTaryArray(b *testing.B) {
	tb := tables.New(1<<20, 8)
	tb.Update(func(addr int) int {
		if addr%16 == 0 {
			return addr / 16 % 100
		}
		return -1
	}, func(i int) int { return i }, tables.UpdateOpts{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.Load32(int64((i % (1 << 16)) &^ 3))
	}
}

func BenchmarkAblationTaryHashMap(b *testing.B) {
	m := map[int64]uint32{}
	for addr := 0; addr < 1<<20; addr += 16 {
		m[int64(addr)] = uint32(id.Encode(addr/16%100, 1))
	}
	var mu sync.RWMutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.RLock()
		_ = m[int64((i%(1<<16))&^3)]
		mu.RUnlock()
	}
}

// --- Ablation 2: movnti-style parallel table publication vs
// sequential (paper §5.2 copyTaryTable) ---

func benchPublish(b *testing.B, parallel bool) {
	tb := tables.New(1<<22, 8) // 4 MiB of covered code -> 1M entries
	ecn := func(addr int) int {
		if addr%16 == 0 {
			return addr / 16 % 1000
		}
		return -1
	}
	bary := func(i int) int { return i }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(ecn, bary, tables.UpdateOpts{Parallel: parallel})
	}
}

func BenchmarkAblationCopySequential(b *testing.B) { benchPublish(b, false) }
func BenchmarkAblationCopyParallel(b *testing.B)   { benchPublish(b, true) }

// --- Ablation 3: reserved-bit alignment validation vs masking the
// target address (paper footnote 1: "we can insert an and instruction
// to align the indirect-branch targets ... but it incurs more
// overhead"). Modeled at the guest level: the masked variant executes
// one extra instruction per check transaction. ---

func benchAlignAblation(b *testing.B, extraMask bool) {
	// A tight indirect-call loop; the masked variant adds an ANDI per
	// iteration, mirroring the extra instruction the footnote costs.
	extra := ""
	if extraMask {
		extra = "x = x & 0x7FFFFFFC;"
	}
	src := fmt.Sprintf(`
int id1(int v) { return v; }
int (*fp)(int) = id1;
int main(void) {
	long x = 0;
	for (int i = 0; i < 50000; i++) {
		%s
		x += fp((int)x & 3);
	}
	return x >= 0 ? 0 : 1;
}`, extra)
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(toolchain.Source{Name: "align", Text: src})
	if err != nil {
		b.Fatal(err)
	}
	var instr int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instr = runImage(b, img, nil)
	}
	b.ReportMetric(float64(instr), "guest-instrs")
}

func BenchmarkAblationAlignReservedBits(b *testing.B) { benchAlignAblation(b, false) }
func BenchmarkAblationAlignAndMask(b *testing.B)      { benchAlignAblation(b, true) }

// --- interpreter throughput (context for all instruction counts) ---

func BenchmarkVMThroughput(b *testing.B) {
	img := buildFor(b, "sjeng", true)
	b.ResetTimer()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		total += runImage(b, img, nil)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs/1e6, "Minstr/s")
	}
}

// --- execution engines: decode-every-instruction interpreter vs the
// predecoded per-page instruction cache vs direct-threaded dispatch ---

func BenchmarkEngineDecodeCache(b *testing.B) {
	img := buildFor(b, "sjeng", true)
	for _, e := range []vm.Engine{vm.EngineInterp, vm.EngineCached, vm.EngineThreaded} {
		b.Run(e.String(), func(b *testing.B) {
			total := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += runImageOpts(b, img, mrt.Options{Engine: e}, nil)
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(total)/secs/1e6, "Minstr/s")
			}
		})
	}
}

// --- check-transaction fusion: every engine on the Fig. 5 sjeng
// harness, instrumented (where fusion collapses every check into one
// host dispatch, and the threaded engine additionally folds the
// following indirect branch) and baseline (where fused degenerates to
// cached — the fusion lookup must not tax uninstrumented code) ---

func BenchmarkCheckFusion(b *testing.B) {
	for _, flavor := range []struct {
		name       string
		instrument bool
	}{{"mcfi", true}, {"baseline", false}} {
		img := buildFor(b, "sjeng", flavor.instrument)
		for _, e := range []vm.Engine{vm.EngineInterp, vm.EngineCached, vm.EngineFused, vm.EngineThreaded, vm.EngineBlockJIT} {
			b.Run(flavor.name+"/"+e.String(), func(b *testing.B) {
				total := int64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total += runImageOpts(b, img, mrt.Options{Engine: e}, nil)
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(total)/secs/1e6, "Minstr/s")
				}
			})
		}
	}
}
