// Differential test of the VM execution engines: the predecoded
// per-page instruction cache, the check-fusing engine, and the
// direct-threaded engine must be observationally identical to the
// decode-every-instruction interpreter — same exit code, same output,
// and a bit-identical retired-instruction count — across every
// workload, both VISA profiles, and both instrumentation flavors. The
// engine list comes from vm.Engines(), so a newly added engine joins
// the matrix automatically.
package mcfi

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

type engineRun struct {
	code    int64
	output  string
	instret int64
}

func runWithEngine(t *testing.T, img *linker.Image, e vm.Engine) engineRun {
	t.Helper()
	rt, err := mrt.New(img, mrt.Options{Engine: e})
	if err != nil {
		t.Fatalf("engine %s: %v", e, err)
	}
	code, err := rt.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("engine %s: %v (output %q)", e, err, rt.Output())
	}
	return engineRun{code: code, output: rt.Output(), instret: rt.Instret()}
}

// nonRefEngines returns every engine except the reference interpreter.
func nonRefEngines() []vm.Engine {
	var es []vm.Engine
	for _, e := range vm.Engines() {
		if e != vm.EngineInterp {
			es = append(es, e)
		}
	}
	return es
}

// TestEnginesDifferential runs every workload under all engines in all
// four (profile, instrumentation) configurations.
func TestEnginesDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, profile := range []visa.Profile{visa.Profile64, visa.Profile32} {
				for _, instr := range []bool{false, true} {
					img, err := toolchain.New(
						toolchain.WithProfile(profile),
						toolchain.WithInstrument(instr),
					).Build(w.TestSource())
					if err != nil {
						t.Fatalf("%s instr=%v: build: %v", profile, instr, err)
					}
					// The workloads never dlopen, so one image can host
					// several runtimes.
					interp := runWithEngine(t, img, vm.EngineInterp)
					for _, e := range nonRefEngines() {
						got := runWithEngine(t, img, e)
						if interp != got {
							t.Errorf("%s instr=%v: engines diverge:\n  interp: code=%d instret=%d out=%q\n  %s: code=%d instret=%d out=%q",
								profile, instr,
								interp.code, interp.instret, interp.output,
								e, got.code, got.instret, got.output)
						}
					}
					if interp.code != 0 {
						t.Errorf("%s instr=%v: exit %d (out %q)", profile, instr, interp.code, interp.output)
					}
				}
			}
		})
	}
}

// TestEnginesDifferentialDlopen runs a dynamically linked workload —
// guest dlopen, dlsym, a checked call into the library, and a call
// through an MCFI-instrumented PLT entry — under every engine and
// demands bit-identical results: the dlopen path's update
// transactions, code-page protection flips, and site rebasing must not
// perturb instret on any engine. A second pass repeats the run under a
// continuous host-side update-transaction storm, where retry counts
// are scheduling-dependent, so only exit code and output are compared.
func TestEnginesDifferentialDlopen(t *testing.T) {
	mainSrc := `
long ext_mul(long a, long b);
int main(void) {
	long h = dlopen("extlib");
	if (h == 0) return 1;
	long addr = dlsym(h, "ext_add");
	if (addr == 0) return 2;
	long (*fn)(long, long) = (long (*)(long, long))addr;
	long acc = 0;
	for (int i = 0; i < 200; i++) {
		acc += ext_mul(i, 3);      /* through the PLT entry */
		acc += fn(acc, i);         /* through a checked fn pointer */
	}
	printf("%ld\n", acc);
	return 0;
}`
	extSrc := `
long ext_mul(long a, long b) { return a * b; }
long ext_add(long a, long b) { return (a + b) & 0xFFFF; }
`
	cfg := toolchain.New(
		toolchain.WithInstrumentation(),
		toolchain.WithLinkOptions(linker.Options{AllowUnresolved: true}),
	)
	img, err := cfg.Build(toolchain.Source{Name: "main", Text: mainSrc})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := cfg.Compile(toolchain.Source{Name: "extlib", Text: extSrc})
	if err != nil {
		t.Fatal(err)
	}

	run := func(e vm.Engine, storm bool) (engineRun, vm.CheckStats) {
		t.Helper()
		rt, err := mrt.New(img, mrt.Options{Engine: e})
		if err != nil {
			t.Fatalf("engine %s: %v", e, err)
		}
		rt.RegisterLibrary(ext)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if storm {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
					}
				}
			}()
		}
		code, err := rt.Run(2_000_000_000)
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatalf("engine %s storm=%v: %v (output %q)", e, storm, err, rt.Output())
		}
		return engineRun{code: code, output: rt.Output(), instret: rt.Instret()},
			rt.Proc.CheckStatsSnapshot()
	}

	interp, _ := run(vm.EngineInterp, false)
	if interp.code != 0 {
		t.Fatalf("dlopen workload exits %d (output %q)", interp.code, interp.output)
	}
	for _, e := range nonRefEngines() {
		got, st := run(e, false)
		if interp != got {
			t.Errorf("quiet dlopen run diverges:\n  interp: %+v\n  %s: %+v", interp, e, got)
		}
		if e == vm.EngineFused || e == vm.EngineThreaded {
			// The PLT call sites must execute as fused superinstructions,
			// not per-instruction fallback.
			if st.PLTExecs == 0 {
				t.Errorf("engine %s: PLTExecs = 0, want > 0 (PLT checks fell back to per-instruction)", e)
			}
		}
	}
	for _, e := range vm.Engines() {
		got, _ := run(e, true)
		if got.code != interp.code || got.output != interp.output {
			t.Errorf("dlopen run under update storm diverges on %s: code=%d output=%q (want code=%d output=%q)",
				e, got.code, got.output, interp.code, interp.output)
		}
	}
}

// TestEngineFlagParsing pins the -engine flag surface of mcfi-run and
// mcfi-bench to the vm package's parser.
func TestEngineFlagParsing(t *testing.T) {
	cases := []struct {
		in      string
		want    vm.Engine
		wantErr bool
	}{
		{"cached", vm.EngineCached, false},
		{"", vm.EngineThreaded, false}, // the default engine
		{"interp", vm.EngineInterp, false},
		{"fused", vm.EngineFused, false},
		{"threaded", vm.EngineThreaded, false},
		{"blockjit", vm.EngineBlockJIT, false},
		{"jit", 0, true},
	}
	for _, c := range cases {
		got, err := vm.ParseEngine(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseEngine(%q): err=%v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if fmt.Sprint(vm.EngineInterp, vm.EngineCached, vm.EngineFused, vm.EngineThreaded, vm.EngineBlockJIT) != "interp cached fused threaded blockjit" {
		t.Errorf("engine names changed: %v", vm.EngineNames())
	}
	// The zero value — what a Process gets when SetEngine is never
	// called — is the default engine, threaded.
	if vm.Engine(0) != vm.EngineThreaded {
		t.Errorf("zero-value engine = %v, want threaded", vm.Engine(0))
	}
	// Every name in the shared list round-trips through the parser, and
	// the parse error enumerates exactly that list — the single source
	// CLI flags and server-side validation quote.
	for _, name := range vm.EngineNames() {
		e, err := vm.ParseEngine(name)
		if err != nil || e.String() != name {
			t.Errorf("EngineNames entry %q does not round-trip: %v %v", name, e, err)
		}
	}
	if _, err := vm.ParseEngine("jit"); err == nil || !strings.Contains(err.Error(), strings.Join(vm.EngineNames(), ", ")) {
		t.Errorf("ParseEngine error %v does not enumerate EngineNames()", err)
	}
}
