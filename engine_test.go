// Differential test of the three VM execution engines: the predecoded
// per-page instruction cache and the check-fusing engine must be
// observationally identical to the decode-every-instruction
// interpreter — same exit code, same output, and a bit-identical
// retired-instruction count — across every workload, both VISA
// profiles, and both instrumentation flavors.
package mcfi

import (
	"fmt"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

type engineRun struct {
	code    int64
	output  string
	instret int64
}

func runWithEngine(t *testing.T, img *linker.Image, e vm.Engine) engineRun {
	t.Helper()
	rt, err := mrt.New(img, mrt.Options{Engine: e})
	if err != nil {
		t.Fatalf("engine %s: %v", e, err)
	}
	code, err := rt.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("engine %s: %v (output %q)", e, err, rt.Output())
	}
	return engineRun{code: code, output: rt.Output(), instret: rt.Instret()}
}

// TestEnginesDifferential runs every workload under all three engines
// in all four (profile, instrumentation) configurations.
func TestEnginesDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, profile := range []visa.Profile{visa.Profile64, visa.Profile32} {
				for _, instr := range []bool{false, true} {
					img, err := toolchain.New(
						toolchain.WithProfile(profile),
						toolchain.WithInstrument(instr),
					).Build(w.TestSource())
					if err != nil {
						t.Fatalf("%s instr=%v: build: %v", profile, instr, err)
					}
					// The workloads never dlopen, so one image can host
					// several runtimes.
					interp := runWithEngine(t, img, vm.EngineInterp)
					for _, e := range []vm.Engine{vm.EngineCached, vm.EngineFused} {
						got := runWithEngine(t, img, e)
						if interp != got {
							t.Errorf("%s instr=%v: engines diverge:\n  interp: code=%d instret=%d out=%q\n  %s: code=%d instret=%d out=%q",
								profile, instr,
								interp.code, interp.instret, interp.output,
								e, got.code, got.instret, got.output)
						}
					}
					if interp.code != 0 {
						t.Errorf("%s instr=%v: exit %d (out %q)", profile, instr, interp.code, interp.output)
					}
				}
			}
		})
	}
}

// TestEngineFlagParsing pins the -engine flag surface of mcfi-run and
// mcfi-bench to the vm package's parser.
func TestEngineFlagParsing(t *testing.T) {
	cases := []struct {
		in      string
		want    vm.Engine
		wantErr bool
	}{
		{"cached", vm.EngineCached, false},
		{"", vm.EngineCached, false},
		{"interp", vm.EngineInterp, false},
		{"fused", vm.EngineFused, false},
		{"jit", 0, true},
	}
	for _, c := range cases {
		got, err := vm.ParseEngine(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseEngine(%q): err=%v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if fmt.Sprint(vm.EngineCached, vm.EngineInterp, vm.EngineFused) != "cached interp fused" {
		t.Errorf("engine names changed: %v %v %v", vm.EngineCached, vm.EngineInterp, vm.EngineFused)
	}
}
