module mcfi

go 1.22
