// Quickstart: compile a MiniC program with the MCFI toolchain, verify
// its instrumentation, link it against the MiniC libc, run it under
// the MCFI runtime, and inspect the control-flow policy it ran under.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
)

const program = `
// A tiny calculator that dispatches through a function-pointer table —
// every indirect call below runs an MCFI check transaction.
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }

int (*ops[3])(int, int) = {add, sub, mul};
char *names[3];

int main(void) {
	names[0] = "add"; names[1] = "sub"; names[2] = "mul";
	for (int i = 0; i < 3; i++) {
		printf("%s(9, 4) = %d\n", names[i], ops[i](9, 4));
	}
	return 0;
}`

func main() {
	b := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	)

	// 1. Compile: parse -> type-check -> instrumented VISA module with
	//    auxiliary type information.
	obj, err := b.Compile(toolchain.Source{Name: "calc", Text: program})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes of code, %d indirect branches, %d functions\n",
		len(obj.Code), len(obj.Aux.IBs), len(obj.Aux.Funcs))

	// 2. Verify: the independent checker proves the instrumentation is
	//    intact before we trust the module.
	if err := verifier.Verify(obj); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: check transactions, sandboxed stores, aligned targets")

	// 3. Link with libc (also an MCFI module, memoized per flavor) into
	//    one image.
	lc, err := b.Libc()
	if err != nil {
		log.Fatal(err)
	}
	img, err := linker.Link([]*module.Object{obj, lc}, linker.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked: entry %#x, %d bytes of code\n", img.Entry, len(img.Code))

	// 4. Run under the MCFI runtime: ID tables are generated from the
	//    merged type information and published in one update
	//    transaction before the first instruction executes.
	rt, err := mrt.New(img, mrt.Options{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	code, err := rt.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the policy the program ran under.
	g := rt.Graph()
	fmt.Printf("exit %d after %d instructions\n", code, rt.Instret())
	fmt.Printf("policy: %d indirect branches, %d legal targets, %d equivalence classes\n",
		g.Stats.IBs, g.Stats.IBTs, g.Stats.EQCs)
	fmt.Printf("tables: %s\n", rt.Tables)
}
