// Dynamic-linking demo: the paper's central scenario — a multithreaded
// program dlopens a library while worker threads keep executing
// checked indirect branches. The runtime generates a new CFG from the
// merged type information and publishes it with one update transaction
// (Tary, barrier, GOT, barrier, Bary); concurrent check transactions
// retry through the version change and never observe a mixed policy.
//
//	go run ./examples/dynlink
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

const mainSrc = `
// Worker threads hammer a function-pointer table while the main thread
// dynamically links a plugin and calls into it.
long work(long n) {
	long acc = 0;
	long (*square)(long) = 0;
	for (long i = 0; i < n; i++) {
		acc += i & 7;
		acc &= 0xFFFF;
	}
	return acc;
}

int main(void) {
	long t1 = thread_spawn(work, 150000);
	long t2 = thread_spawn(work, 150000);

	long h = dlopen("plugin");
	if (h == 0) { puts("dlopen failed"); return 1; }
	puts("plugin linked");

	long addr = dlsym(h, "plugin_transform");
	if (addr == 0) { puts("dlsym failed"); return 2; }
	long (*transform)(long) = (long (*)(long))addr;

	long r = transform(41);
	printf("plugin_transform(41) = %ld\n", r);

	printf("workers: %ld %ld\n", thread_join(t1), thread_join(t2));
	return 0;
}`

const pluginSrc = `
static long plugin_calls = 0;
long plugin_transform(long x) {
	plugin_calls++;
	return x * 2 + plugin_calls;
}`

func main() {
	b := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	)
	img, err := b.Build(toolchain.Source{Name: "host", Text: mainSrc})
	if err != nil {
		log.Fatal(err)
	}
	plugin, err := b.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
	if err != nil {
		log.Fatal(err)
	}

	rt, err := mrt.New(img, mrt.Options{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	rt.RegisterLibrary(plugin)

	before := rt.Graph().Stats
	fmt.Printf("policy before dlopen: IBs=%d IBTs=%d EQCs=%d\n",
		before.IBs, before.IBTs, before.EQCs)

	// Add host-side update pressure (the Fig. 6 experiment's 50 Hz
	// re-versioning) while the guest runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
			}
		}
	}()

	code, err := rt.Run(0)
	close(stop)
	wg.Wait()
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	after := rt.Graph().Stats
	fmt.Printf("policy after dlopen:  IBs=%d IBTs=%d EQCs=%d\n",
		after.IBs, after.IBTs, after.EQCs)
	fmt.Printf("exit %d; %d instructions; %d update transactions; %d check retries\n",
		code, rt.Instret(), rt.Tables.Updates(), rt.Tables.Retries())
}
