// JIT simulation: the paper's "rather extreme test" (§8.1) — code is
// installed on the fly, so the control-flow policy must be regenerated
// and republished frequently. The paper measured V8 installing code at
// a rate that makes indirect-branch executions outnumber CFG updates
// by ~10^8 : 1 and simulated updates at 50 Hz; here we dlopen a stream
// of freshly generated plugin modules while a guest worker keeps
// calling through checked function pointers, then report the ratio.
//
//	go run ./examples/jitsim
package main

import (
	"fmt"
	"log"
	"os"

	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

const hostSrc = `
enum { STAGES = 8 };

int main(void) {
	long total = 0;
	char name[8];
	strcpy(name, "jit0");
	for (int s = 0; s < STAGES; s++) {
		name[3] = (char)('0' + s);
		long h = dlopen(name);
		if (h == 0) { printf("dlopen %s failed\n", name); return 1; }
		long addr = dlsym(h, name);   // each stage exports its own entry
		if (addr == 0) { printf("dlsym %s failed\n", name); return 2; }
		long (*stage)(long) = (long (*)(long))addr;
		// hot loop through the freshly installed code
		for (int i = 0; i < 4000; i++) total += stage((long)i);
		total &= 0xFFFFFF;
		printf("stage %d installed, total=%ld\n", s, total);
	}
	return 0;
}`

// stageSource generates a fresh "JIT-compiled" module, different per
// stage (as a JIT would emit specialized code).
func stageSource(n int) toolchain.Source {
	name := fmt.Sprintf("jit%d", n)
	text := fmt.Sprintf(`
static long acc%d = %d;
long %s(long x) {
	acc%d = (acc%d * 31 + x) & 0xFFFF;
	return acc%d + %d * x;
}`, n, n*7+1, name, n, n, n, n+1)
	return toolchain.Source{Name: name, Text: text}
}

func main() {
	b := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	)
	img, err := b.Build(toolchain.Source{Name: "jit-host", Text: hostSrc})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := mrt.New(img, mrt.Options{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		obj, err := b.Compile(stageSource(s))
		if err != nil {
			log.Fatal(err)
		}
		rt.RegisterLibrary(obj)
	}

	code, err := rt.Run(0)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	g := rt.Graph()
	fmt.Printf("exit %d\n", code)
	fmt.Printf("%d instructions executed; %d policy updates (dlopen + dlsym republish)\n",
		rt.Instret(), rt.Tables.Updates())
	fmt.Printf("final policy: IBs=%d IBTs=%d EQCs=%d; check retries=%d\n",
		g.Stats.IBs, g.Stats.IBTs, g.Stats.EQCs, rt.Tables.Retries())
	fmt.Printf("instructions per update: %d (the paper's V8 measurement puts indirect\n",
		rt.Instret()/rt.Tables.Updates())
	fmt.Println("branches at ~10^8 per CFG update; frequent updates remain cheap because")
	fmt.Println("check transactions only retry while the relevant IDs are mid-update)")
}
