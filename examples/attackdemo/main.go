// Attack demo: the paper's security arguments (§8.3), executed.
//
// Scenario 1 — stack smash: a buffer-adjacent write overwrites a
// return address with an address-taken "evil" function. Baseline
// execution is hijacked; MCFI's return check halts at the violation.
//
// Scenario 2 — GnuPG CVE-2006-6235 analogue: an attacker-controlled
// function pointer is aimed at an execve-like function. Coarse-grained
// CFI (any address-taken function is a legal call target) permits the
// jump; MCFI's type-matching policy forbids it.
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"mcfi/internal/baseline"
	"mcfi/internal/cfg"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

const smashSrc = `
int pwned = 0;
void evil(void) { pwned = 1; puts("  !! control flow hijacked: evil() is running"); }
void (*keep)(void) = evil;   // evil is address-taken, a plausible ROP pivot

long victim(long target) {
	long local = 0;
	long *p = &local;
	p[2] = target;   // p[2] lands on the saved return address
	return local;
}
int main(void) {
	puts("  victim() called with a corrupting payload...");
	victim((long)evil);
	puts("  victim returned normally");
	return pwned;
}`

const gnupgSrc = `
int execve_like(char *path, char **argv) {
	puts("  !! spawning a shell (execve reached)");
	return 0;
}
int (*libc_ref)(char *, char **) = execve_like;  // address-taken via libc linkage

void (*handler)(void);

int main(void) {
	handler = (void (*)(void))execve_like;   // attacker-corrupted pointer
	handler();
	return 0;
}`

func run(name, src string, instrumented bool) {
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrument(instrumented),
	).Build(toolchain.Source{Name: name, Text: src})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := mrt.New(img, mrt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	code, err := rt.Run(50_000_000)
	fmt.Print(rt.Output())
	if f, ok := err.(*vm.Fault); ok && f.Kind == vm.FaultCFI {
		fmt.Printf("  => MCFI halted the program: %v\n", f)
		return
	}
	if err != nil {
		fmt.Printf("  => terminated: %v\n", err)
		return
	}
	fmt.Printf("  => exited %d\n", code)
}

func main() {
	fmt.Println("--- Scenario 1: return-address corruption ---")
	fmt.Println("[baseline, no CFI]")
	run("smash", smashSrc, false)
	fmt.Println("[MCFI]")
	run("smash", smashSrc, true)

	fmt.Println()
	fmt.Println("--- Scenario 2: function-pointer hijack to execve (GnuPG CVE-2006-6235) ---")
	fmt.Println("[baseline, no CFI]")
	run("gnupg", gnupgSrc, false)
	fmt.Println("[MCFI]")
	run("gnupg", gnupgSrc, true)

	// Policy-level comparison: would coarse-grained CFI have allowed
	// the scenario-2 jump? (Paper §8.3: "this kind of attack may still
	// be possible under coarse-grained CFI, but not fine-grained CFI".)
	fmt.Println()
	fmt.Println("--- Policy comparison for scenario 2 ---")
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(toolchain.Source{Name: "gnupg", Text: gnupgSrc})
	if err != nil {
		log.Fatal(err)
	}
	g := cfg.Generate(cfg.Input{
		Funcs: img.Aux.Funcs, IBs: img.Aux.IBs, RetSites: img.Aux.RetSites,
		SetjmpConts: img.Aux.SetjmpConts, Annotations: img.Aux.AsmAnnotations,
		Profile: img.Profile,
	})
	var callSite, execveAddr int
	for _, ib := range img.Aux.IBs {
		if ib.Kind.String() == "icall" {
			callSite = ib.Offset
		}
	}
	for _, f := range img.Aux.Funcs {
		if f.Name == "execve_like" {
			execveAddr = f.Offset
		}
	}
	for _, p := range baseline.Evaluate(img, g, len(img.Code)) {
		verdict := "BLOCKS"
		if p.Allows(callSite, execveAddr) {
			verdict = "allows"
		}
		fmt.Printf("  %-12s %s the hijacked call to execve_like\n", p.Name, verdict)
	}
}
