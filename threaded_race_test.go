// Race-hardening test for the direct-threaded engine, the
// branch-folding analogue of fused_race_test.go: an instrumented
// workload runs on EngineThreaded — folded branches, verdict cache,
// trace superinstructions and all — while a host goroutine issues
// table update transactions as fast as it can. Under `go test -race`
// this exercises the threaded fill path (handler publication in the
// page cache, fold scanning past the check span) against concurrent
// epoch bumps and slot invalidation.
package mcfi

import (
	"sync"
	"testing"

	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

func TestThreadedEngineUnderUpdateStorm(t *testing.T) {
	w, ok := workload.ByName("sjeng")
	if !ok {
		t.Fatal("sjeng workload missing")
	}
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(w.TestSource())
	if err != nil {
		t.Fatal(err)
	}

	ref := runWithEngine(t, img, vm.EngineInterp)

	rt, err := mrt.New(img, mrt.Options{Engine: vm.EngineThreaded})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
			}
		}
	}()
	code, err := rt.Run(2_000_000_000)
	close(stop)
	wg.Wait()

	if err != nil {
		t.Fatalf("threaded run under updates: %v (output %q)", err, rt.Output())
	}
	if code != ref.code || rt.Output() != ref.output {
		t.Errorf("threaded under updates diverges from interp:\n  interp:   code=%d out=%q\n  threaded: code=%d out=%q",
			ref.code, ref.output, code, rt.Output())
	}
	if rt.Tables.Updates() < 2 {
		t.Logf("only %d updates raced the guest", rt.Tables.Updates())
	}

	// The quiet run must be bit-identical down to instret: a folded
	// branch retires exactly the instruction it replaces, and a verdict
	// hit replays exactly the pass it memoized.
	quiet := runWithEngine(t, img, vm.EngineThreaded)
	if quiet != ref {
		t.Errorf("threaded without updates diverges from interp:\n  interp:   code=%d instret=%d\n  threaded: code=%d instret=%d",
			ref.code, ref.instret, quiet.code, quiet.instret)
	}
}
