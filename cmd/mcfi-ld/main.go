// mcfi-ld statically links MCFI object modules (as produced by
// mcfi-cc) into a loadable image description, merging their auxiliary
// information and emitting MCFI-instrumented PLT entries for imports
// left to dynamic linking.
//
// Usage:
//
//	mcfi-ld [-allow-unresolved] [-with-libc] [-stats] main.mo lib.mo ...
package main

import (
	"flag"
	"fmt"
	"os"

	"mcfi/internal/cfg"
	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/toolchain"
)

func main() {
	allowUnresolved := flag.Bool("allow-unresolved", false, "route undefined functions through PLT entries")
	withLibc := flag.Bool("with-libc", true, "link the built-in MiniC libc")
	stats := flag.Bool("stats", false, "print CFG statistics of the linked image")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-ld [flags] module.mo ...")
		os.Exit(2)
	}
	var objs []*module.Object
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		obj, err := module.Read(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		objs = append(objs, obj)
	}
	if *withLibc {
		lc, err := toolchain.New(
			toolchain.WithProfile(objs[0].Profile),
			toolchain.WithInstrument(objs[0].Instrumented),
		).Libc()
		if err != nil {
			fatal(err)
		}
		objs = append(objs, lc)
	}
	img, err := linker.Link(objs, linker.Options{AllowUnresolved: *allowUnresolved})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("linked %d modules: %d bytes code, %d bytes data, entry %#x, %d PLT entries\n",
		len(objs), len(img.Code), len(img.Data), img.Entry, len(img.PLT))
	for _, m := range img.Modules {
		fmt.Printf("  %-12s code [%#x, %#x)  data [%#x, %#x)\n",
			m.Name, m.CodeStart, m.CodeEnd, m.DataStart, m.DataEnd)
	}
	if *stats {
		g := cfg.Generate(cfg.Input{
			Funcs: img.Aux.Funcs, IBs: img.Aux.IBs,
			RetSites: img.Aux.RetSites, SetjmpConts: img.Aux.SetjmpConts,
			Annotations: img.Aux.AsmAnnotations, Profile: img.Profile,
		})
		fmt.Printf("CFG: %d indirect branches, %d targets, %d equivalence classes\n",
			g.Stats.IBs, g.Stats.IBTs, g.Stats.EQCs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfi-ld:", err)
	os.Exit(1)
}
