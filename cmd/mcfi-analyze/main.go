// mcfi-analyze runs the C1/C2 analyzer (paper §6) over MiniC sources:
// it reports casts involving function-pointer types, applies the five
// false-positive elimination rules (UC, DC, MF, SU, NF), and
// classifies the residue into K1 (needs a source fix for a complete
// CFG) and K2 (round-trip casts, no fix needed).
//
// Usage:
//
//	mcfi-analyze [-v] [-noprelude] file.c ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcfi/internal/analyzer"
	"mcfi/internal/toolchain"
)

func main() {
	verbose := flag.Bool("v", false, "print every finding with its classification")
	noprelude := flag.Bool("noprelude", false, "do not prepend the libc header")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-analyze [-v] file.c ...")
		os.Exit(2)
	}
	total := &analyzer.Report{Name: "TOTAL"}
	fmt.Printf("%-16s %6s %5s %4s %4s %4s %4s %4s %5s %4s %4s %5s\n",
		"file", "SLOC", "VBE", "UC", "DC", "MF", "SU", "NF", "VAE", "K1", "K2", "asm")
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		var bopts []toolchain.Option
		if *noprelude {
			bopts = append(bopts, toolchain.WithoutPrelude())
		}
		unit, err := toolchain.New(bopts...).Analyze(
			toolchain.Source{Name: name, Text: string(text)})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		rep := analyzer.Analyze(unit)
		rep.SLOC = analyzer.CountSLOC(string(text))
		fmt.Printf("%-16s %6d %5d %4d %4d %4d %4d %4d %5d %4d %4d %5d\n",
			name, rep.SLOC, rep.VBE, rep.UC, rep.DC, rep.MF, rep.SU, rep.NF,
			rep.VAE, rep.K1, rep.K2, rep.AsmTotal)
		if *verbose {
			for _, f := range rep.Findings {
				fmt.Printf("    %s\n", f)
			}
		}
		total.Add(rep)
	}
	if flag.NArg() > 1 {
		fmt.Printf("%-16s %6d %5d %4d %4d %4d %4d %4d %5d %4d %4d %5d\n",
			"TOTAL", total.SLOC, total.VBE, total.UC, total.DC, total.MF,
			total.SU, total.NF, total.VAE, total.K1, total.K2, total.AsmTotal)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfi-analyze:", err)
	os.Exit(1)
}
