// mcfi-verify is the standalone modular verifier (paper §7): it reads
// MCFI object modules and checks that their instrumentation is intact
// — complete disassembly, well-formed check transactions, no raw
// returns, sandboxed stores, aligned targets, and statically valid
// jump tables. It exits nonzero if any module fails, which removes the
// compiler and rewriter from the trusted computing base.
//
// Usage:
//
//	mcfi-verify module.mo ...
//	mcfi-verify -src prog.c          (compile + verify in one step)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcfi/internal/module"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
)

func main() {
	srcMode := flag.Bool("src", false, "arguments are MiniC sources: compile (instrumented) then verify")
	profile := flag.Int("profile", 64, "VISA profile when -src is used")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-verify [-src] file ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		var obj *module.Object
		var err error
		if *srcMode {
			text, rerr := os.ReadFile(path)
			if rerr != nil {
				fatal(rerr)
			}
			prof := visa.Profile64
			if *profile == 32 {
				prof = visa.Profile32
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			obj, err = toolchain.New(
				toolchain.WithProfile(prof),
				toolchain.WithInstrumentation(),
			).Compile(toolchain.Source{Name: name, Text: string(text)})
		} else {
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				fatal(rerr)
			}
			obj, err = module.Read(data)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if verr := verifier.Verify(obj); verr != nil {
			failed = true
			fmt.Printf("%s: FAILED\n%v\n", path, verr)
			continue
		}
		fmt.Printf("%s: OK (%d bytes code, %d indirect branches, %d functions)\n",
			path, len(obj.Code), len(obj.Aux.IBs), len(obj.Aux.Funcs))
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfi-verify:", err)
	os.Exit(1)
}
