// mcfi-bench regenerates the tables and figures of the MCFI paper's
// evaluation (§8) over the reproduction's workload suite.
//
// Usage:
//
//	mcfi-bench -exp all
//	mcfi-bench -exp fig5 -profile 32
//	mcfi-bench -exp table3 -scale 1.0
//	mcfi-bench -exp fig5 -engine fused -json BENCH_fig5.json
//	mcfi-bench -diff -threshold 30 old.json new.json
//
// Experiments: fig5, fig6, stm, space, table1, table2, table3, air,
// rop, cfggen, updates, sanity, all. With -json, per-experiment results (and
// per-workload runs for fig5/fig6) are also written as a
// machine-readable snapshot for perf-trajectory tracking. With -diff,
// no experiments run: the two snapshot files given as positional
// arguments are compared row-by-row and the process exits non-zero if
// any matched row's Minstr/s dropped by more than -threshold percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mcfi/internal/buildstore"
	"mcfi/internal/experiments"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// records accumulates the -json snapshot across experiments (schema:
// experiments.BenchRecord, shared with the -diff reader).
var records []experiments.BenchRecord

// recordOverheadRows flattens fig5/fig6 rows into per-run records.
func recordOverheadRows(exp string, c experiments.Config, rows []experiments.OverheadRow) {
	for _, r := range rows {
		if r.Name == "average" {
			continue
		}
		records = append(records,
			experiments.BenchRecord{
				Experiment: exp, Benchmark: r.Name,
				Engine: c.Engine.String(), Profile: c.Profile.String(),
				Instrumented: false, WallSecs: r.BaselineSecs,
				Instret:      r.Baseline,
				MinstrPerSec: experiments.MinstrPerSec(r.Baseline, r.BaselineSecs),
			},
			experiments.BenchRecord{
				Experiment: exp, Benchmark: r.Name,
				Engine: c.Engine.String(), Profile: c.Profile.String(),
				Instrumented: true, WallSecs: r.MCFISecs,
				Instret:      r.MCFI,
				MinstrPerSec: experiments.MinstrPerSec(r.MCFI, r.MCFISecs),
			},
		)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig5 fig6 stm space table1 table2 table3 air rop cfggen updates sanity all)")
	profile := flag.Int("profile", 64, "VISA profile: 32 or 64")
	work := flag.Int("work", 0, "override workload iteration count (0 = reference inputs)")
	scale := flag.Float64("scale", 0.25, "Table 3 synthetic-module scale factor")
	hz := flag.Int("hz", 50, "update-transaction frequency for fig6")
	updModules := flag.Int("upd-modules", 24, "updates experiment: modules in the dlopen storm")
	updCheckers := flag.Int("upd-checkers", 4, "updates experiment: concurrent check loops racing the storm")
	engine := vm.EngineThreaded
	flag.Var((*vm.EngineFlag)(&engine), "engine", vm.EngineUsage())
	jitThreshold := flag.Int64("jit-threshold", 0, "blockjit engine: executions before a block is compiled (0 = vm default)")
	jobs := flag.Int("jobs", 0, "worker-pool width for builds and workloads (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "persistent build-store directory: reuse compiled artifacts across runs")
	jsonPath := flag.String("json", "", "write per-experiment results to this file as JSON")
	diffMode := flag.Bool("diff", false, "compare two -json snapshots: mcfi-bench -diff old.json new.json")
	threshold := flag.Float64("threshold", 25, "with -diff, fail if any Minstr/s drop exceeds this percent")
	flag.Parse()

	if *diffMode {
		os.Exit(runDiff(flag.Args(), *threshold))
	}

	c := experiments.Config{
		Profile:      visa.Profile64,
		Work:         *work,
		GenScale:     *scale,
		Engine:       engine,
		JITThreshold: *jitThreshold,
		Jobs:         *jobs,
	}
	if *profile == 32 {
		c.Profile = visa.Profile32
	}
	if *storeDir != "" {
		disk, err := buildstore.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-bench:", err)
			os.Exit(2)
		}
		c.Store = buildstore.NewTiered(buildstore.NewMem(0), disk)
		defer c.Store.Close()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s (%s, %s engine) ====\n", name, c.Profile, engine)
		var before buildstore.Metrics
		if c.Store != nil {
			before = c.Store.Metrics()
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		rec := experiments.BenchRecord{
			Experiment: name, Engine: engine.String(),
			Profile: c.Profile.String(), Instrumented: true,
			WallSecs: secs,
		}
		if c.Store != nil {
			after := c.Store.Metrics()
			rec.StoreBuilds = after.Builds - before.Builds
			rec.StoreHits = map[string]int64{}
			for tier, n := range after.TierHits {
				if d := n - before.TierHits[tier]; d > 0 {
					rec.StoreHits[tier] = d
				}
			}
			fmt.Printf("[%s wall time: %.2fs; store: %d built, hits %v]\n\n",
				name, secs, rec.StoreBuilds, rec.StoreHits)
		} else {
			fmt.Printf("[%s wall time: %.2fs]\n\n", name, secs)
		}
		records = append(records, rec)
	}

	run("sanity", func() error { return sanity(c) })
	run("fig5", func() error { return fig5(c) })
	run("fig6", func() error { return fig6(c, *hz) })
	run("stm", func() error { return stm() })
	run("space", func() error { return space(c) })
	run("table1", func() error { return table1(c) })
	run("table2", func() error { return table2(c) })
	run("table3", func() error { return table3(c) })
	run("air", func() error { return airTable(c) })
	run("rop", func() error { return ropTable(c) })
	run("cfggen", func() error { return cfggen(c) })
	run("updates", func() error { return updates(c, *updModules, *updCheckers) })

	if *jsonPath != "" {
		out, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-bench: marshal results:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-bench: write results:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result records to %s\n", len(records), *jsonPath)
	}
}

// runDiff implements -diff: compare two snapshots and return the
// process exit code (0 = no regression past the threshold, 1 =
// regression, 2 = usage/IO error).
func runDiff(args []string, thresholdPct float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-bench -diff [-threshold pct] old.json new.json")
		return 2
	}
	oldRecs, err := experiments.ReadSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfi-bench:", err)
		return 2
	}
	newRecs, err := experiments.ReadSnapshot(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfi-bench:", err)
		return 2
	}
	d := experiments.DiffSnapshots(oldRecs, newRecs)
	fmt.Printf("diff %s -> %s (threshold %.0f%%)\n", args[0], args[1], thresholdPct)
	fmt.Print(d.Format(thresholdPct))
	regs := d.Regressions(thresholdPct)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mcfi-bench: %d experiment(s) regressed more than %.0f%%\n",
			len(regs), thresholdPct)
		return 1
	}
	fmt.Printf("no regressions past %.0f%%\n", thresholdPct)
	return 0
}

func sanity(c experiments.Config) error {
	if err := experiments.VerifyIDEncoding(); err != nil {
		return err
	}
	// Verify every instrumented workload module with the independent
	// verifier before trusting measurements from it.
	for _, w := range workload.All() {
		obj, err := experiments.ModuleOf(w.Name, c)
		if err != nil {
			return err
		}
		if err := verifier.Verify(obj); err != nil {
			return fmt.Errorf("%s failed verification: %v", w.Name, err)
		}
		fmt.Printf("  %-11s verified (%d bytes of code, %d IBs)\n",
			w.Name, len(obj.Code), len(obj.Aux.IBs))
	}
	return nil
}

func fig5(c experiments.Config) error {
	rows, err := experiments.Fig5(c)
	if err != nil {
		return err
	}
	recordOverheadRows("fig5", c, rows)
	fmt.Println("Fig. 5 — execution overhead of MCFI instrumentation (no updates)")
	fmt.Printf("%-12s %14s %14s %10s\n", "benchmark", "baseline", "MCFI", "overhead")
	for _, r := range rows {
		if r.Name == "average" {
			fmt.Printf("%-12s %14s %14s %9.2f%%\n", r.Name, "", "", r.OverheadPct)
			continue
		}
		fmt.Printf("%-12s %14d %14d %9.2f%%\n", r.Name, r.Baseline, r.MCFI, r.OverheadPct)
	}
	return nil
}

func fig6(c experiments.Config, hz int) error {
	rows, err := experiments.Fig6(c, hz)
	if err != nil {
		return err
	}
	recordOverheadRows("fig6", c, rows)
	fmt.Printf("Fig. 6 — overhead with update transactions at %d Hz\n", hz)
	fmt.Printf("%-12s %14s %14s %10s %9s %8s\n",
		"benchmark", "baseline", "MCFI", "overhead", "updates", "retries")
	for _, r := range rows {
		if r.Name == "average" {
			fmt.Printf("%-12s %14s %14s %9.2f%%\n", r.Name, "", "", r.OverheadPct)
			continue
		}
		fmt.Printf("%-12s %14d %14d %9.2f%% %9d %8d\n",
			r.Name, r.Baseline, r.MCFI, r.OverheadPct, r.Updates, r.Retries)
	}
	return nil
}

func stm() error {
	rows := experiments.STM(2_000_000, 4, 50)
	fmt.Println("§8.1 — normalized check-transaction cost (4 readers, 50 Hz updates)")
	fmt.Printf("%-8s %12s %12s\n", "scheme", "ns/check", "normalized")
	for _, r := range rows {
		fmt.Printf("%-8s %12.1f %12.2f\n", r.Name, r.NsPerCheck, r.Normalized)
	}
	return nil
}

func space(c experiments.Config) error {
	rows, err := experiments.Space(c)
	if err != nil {
		return err
	}
	fmt.Println("§8.1 — space overhead (static code size; Tary sized as code)")
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n",
		"benchmark", "baseline", "MCFI", "increase", "tary", "bary")
	for _, r := range rows {
		if r.Name == "average" {
			fmt.Printf("%-12s %10s %10s %9.2f%%\n", r.Name, "", "", r.IncreasePct)
			continue
		}
		fmt.Printf("%-12s %10d %10d %9.2f%% %10d %10d\n",
			r.Name, r.BaselineCode, r.MCFICode, r.IncreasePct, r.TaryBytes, r.BaryBytes)
	}
	return nil
}

func table1(c experiments.Config) error {
	rows, err := experiments.Tables12(c)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 — C1 violations and false-positive elimination")
	fmt.Printf("%-12s %6s %5s %4s %4s %4s %4s %4s %5s\n",
		"benchmark", "SLOC", "VBE", "UC", "DC", "MF", "SU", "NF", "VAE")
	for _, r := range rows {
		rep := r.Rep
		fmt.Printf("%-12s %6d %5d %4d %4d %4d %4d %4d %5d\n",
			r.Name, rep.SLOC, rep.VBE, rep.UC, rep.DC, rep.MF, rep.SU, rep.NF, rep.VAE)
	}
	return nil
}

func table2(c experiments.Config) error {
	rows, err := experiments.Tables12(c)
	if err != nil {
		return err
	}
	fmt.Println("Table 2 — K1/K2 classification of residual violations")
	fmt.Printf("%-12s %5s %5s %5s   %s\n", "benchmark", "VAE", "K1", "K2", "note")
	for _, r := range rows {
		rep := r.Rep
		if rep.VAE == 0 {
			continue
		}
		note := "K1 cases are dead code (sources ship 'fixed', like gcc's 14)"
		if rep.K1 == 0 {
			note = "round-trip casts only; no fix needed"
		}
		fmt.Printf("%-12s %5d %5d %5d   %s\n", r.Name, rep.VAE, rep.K1, rep.K2, note)
	}
	return nil
}

func table3(c experiments.Config) error {
	rows, err := experiments.Table3(c)
	if err != nil {
		return err
	}
	fmt.Printf("Table 3 — CFG statistics (%s, scale %.2f)\n", c.Profile, c.GenScale)
	fmt.Printf("%-12s %8s %8s %8s %12s\n", "benchmark", "IBs", "IBTs", "EQCs", "gen time")
	for _, r := range rows {
		fmt.Printf("%-12s %8d %8d %8d %9.2f ms\n",
			r.Name, r.IBs, r.IBTs, r.EQCs, r.GenerationTimeMs)
	}
	return nil
}

func airTable(c experiments.Config) error {
	rows, err := experiments.AIRTable(c)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	order := rows[0].Order
	fmt.Println("§8.3 — AIR by policy")
	fmt.Printf("%-12s", "benchmark")
	for _, p := range order {
		fmt.Printf(" %12s", p)
	}
	fmt.Println()
	sums := make([]float64, len(order))
	for _, r := range rows {
		fmt.Printf("%-12s", r.Name)
		for i, p := range order {
			fmt.Printf(" %12.4f", r.Values[p])
			sums[i] += r.Values[p]
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "average")
	for i := range order {
		fmt.Printf(" %12.4f", sums[i]/float64(len(rows)))
	}
	fmt.Println()
	return nil
}

func ropTable(c experiments.Config) error {
	rows, err := experiments.ROP(c)
	if err != nil {
		return err
	}
	fmt.Println("§8.3 — ROP gadget elimination (rp++-style unique gadgets)")
	fmt.Printf("%-12s %10s %12s %10s %12s\n",
		"benchmark", "original", "raw-hardened", "usable", "eliminated")
	for _, r := range rows {
		if r.Name == "average" {
			fmt.Printf("%-12s %10s %12s %10s %11.2f%%\n", r.Name, "", "", "", r.EliminationPct)
			continue
		}
		fmt.Printf("%-12s %10d %12d %10d %11.2f%%\n",
			r.Name, r.Original, r.RawHardened, r.Usable, r.EliminationPct)
	}
	return nil
}

func updates(c experiments.Config, modules, checkers int) error {
	rows, err := experiments.UpdateThroughput(c, modules, checkers)
	if err != nil {
		return err
	}
	fmt.Printf("update-transaction throughput — dlopen storm (%d modules, %d check loops, %d-byte base)\n",
		rows[0].Modules, rows[0].Checkers, rows[0].CodeBytes)
	fmt.Printf("%-8s %10s %8s %10s %10s %12s %12s\n",
		"variant", "publishes", "delta", "wall", "upd/s", "retries", "checks")
	var delta, full float64
	for _, r := range rows {
		fmt.Printf("%-8s %10d %8d %9.3fs %10.1f %12d %12d\n",
			r.Variant, r.Publishes, r.DeltaPublishes, r.WallSecs, r.UpdatesPerSec, r.Retries, r.Checks)
		switch r.Variant {
		case "delta":
			delta = r.UpdatesPerSec
		case "full":
			full = r.UpdatesPerSec
		}
		records = append(records, experiments.BenchRecord{
			Experiment: "update_throughput", Benchmark: r.Variant,
			Engine: c.Engine.String(), Profile: c.Profile.String(),
			Instrumented: true, WallSecs: r.WallSecs,
			MinstrPerSec: r.UpdatesPerSec, // updates/s in the throughput slot
		})
	}
	if full > 0 {
		fmt.Printf("delta/full speedup: %.1fx\n", delta/full)
	}
	return nil
}

func cfggen(c experiments.Config) error {
	ms, stats, err := experiments.CFGGen(c)
	if err != nil {
		return err
	}
	fmt.Printf("§8.2 — type-matching CFG generation for gcc-scale input:\n")
	fmt.Printf("  %.2f ms (IBs=%d IBTs=%d EQCs=%d)\n", ms, stats.IBs, stats.IBTs, stats.EQCs)
	return nil
}
