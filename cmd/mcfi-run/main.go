// mcfi-run builds and executes a MiniC program under the MCFI runtime:
// it compiles the sources (instrumented by default), links them with
// the MiniC libc, loads the image into a fresh sandbox with ID tables
// generated from the merged type information, and interprets it.
//
// Usage:
//
//	mcfi-run [-baseline] [-profile 64] [-engine cached] [-lib plugin.c]... [-max N] prog.c [more.c...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	baselineF := flag.Bool("baseline", false, "run without MCFI instrumentation")
	profile := flag.Int("profile", 64, "VISA profile: 32 or 64")
	maxInstr := flag.Int64("max", 0, "instruction budget (0 = unlimited)")
	stats := flag.Bool("stats", false, "print instruction counts and table statistics")
	engine := vm.EngineThreaded
	flag.Var((*vm.EngineFlag)(&engine), "engine", vm.EngineUsage())
	jitThreshold := flag.Int64("jit-threshold", 0, "blockjit engine: executions before a block is compiled (0 = vm default)")
	var libs listFlag
	flag.Var(&libs, "lib", "MiniC source compiled as a dlopen-able library (repeatable)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-run [flags] prog.c [more.c ...]")
		os.Exit(2)
	}
	prof := visa.Profile64
	if *profile == 32 {
		prof = visa.Profile32
	}
	b := toolchain.New(
		toolchain.WithProfile(prof),
		toolchain.WithInstrument(!*baselineF),
		toolchain.WithLinkOptions(linker.Options{AllowUnresolved: true}),
	)

	var srcs []toolchain.Source
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		srcs = append(srcs, toolchain.Source{Name: baseName(path), Text: string(text)})
	}
	img, err := b.Build(srcs...)
	if err != nil {
		fatal(err)
	}

	opts := mrt.Options{Out: os.Stdout, Engine: engine, JITThreshold: *jitThreshold}
	if b.Instrumented() {
		opts.Verify = func(obj *module.Object) error { return verifier.Verify(obj) }
	}
	rt, err := mrt.New(img, opts)
	if err != nil {
		fatal(err)
	}
	for _, lib := range libs {
		text, err := os.ReadFile(lib)
		if err != nil {
			fatal(err)
		}
		obj, err := b.Compile(toolchain.Source{Name: baseName(lib), Text: string(text)})
		if err != nil {
			fatal(err)
		}
		rt.RegisterLibrary(obj)
	}

	code, err := rt.Run(*maxInstr)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "[mcfi-run] exit=%d instructions=%d", code, rt.Instret())
		if rt.Tables != nil {
			fmt.Fprintf(os.Stderr, " %s updates=%d retries=%d",
				rt.Tables, rt.Tables.Updates(), rt.Tables.Retries())
		}
		fmt.Fprintln(os.Stderr)
	}
	os.Exit(int(code))
}

func baseName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfi-run:", err)
	os.Exit(1)
}
