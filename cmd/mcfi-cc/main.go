// mcfi-cc compiles a MiniC translation unit into an MCFI object
// module: parse, type-check, lower to VISA with MCFI instrumentation,
// and emit the module (code, data, relocations, and the auxiliary type
// information used for CFG generation at link time).
//
// Usage:
//
//	mcfi-cc [-o out.mo] [-profile 64] [-baseline] [-noprelude] [-S] input.c
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

func main() {
	out := flag.String("o", "", "output module file (default: input with .mo)")
	profile := flag.Int("profile", 64, "VISA profile: 32 or 64")
	baseline := flag.Bool("baseline", false, "disable MCFI instrumentation")
	noprelude := flag.Bool("noprelude", false, "do not prepend the libc header")
	asm := flag.Bool("S", false, "print the VISA disassembly instead of writing a module")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcfi-cc [flags] input.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	input := flag.Arg(0)
	src, err := os.ReadFile(input)
	if err != nil {
		fatal(err)
	}

	prof := visa.Profile64
	if *profile == 32 {
		prof = visa.Profile32
	}
	opts := []toolchain.Option{
		toolchain.WithProfile(prof),
		toolchain.WithInstrument(!*baseline),
	}
	if *noprelude {
		opts = append(opts, toolchain.WithoutPrelude())
	}
	name := strings.TrimSuffix(filepath.Base(input), filepath.Ext(input))
	obj, err := toolchain.New(opts...).Compile(toolchain.Source{Name: name, Text: string(src)})
	if err != nil {
		fatal(err)
	}

	if *asm {
		fmt.Print(visa.Disasm(obj.Code, 0))
		return
	}
	dest := *out
	if dest == "" {
		dest = name + ".mo"
	}
	f, err := os.Create(dest)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := obj.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes code, %d bytes data, %d functions, %d indirect branches\n",
		dest, len(obj.Code), len(obj.Data), len(obj.Aux.Funcs), len(obj.Aux.IBs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfi-cc:", err)
	os.Exit(1)
}
