// mcfi-load drives a running mcfi-serve instance with a mixed
// workload set at a fixed concurrency and reports serving throughput:
// jobs/s, aggregate guest Minstr/s (end-to-end and execution-only),
// build-cache hit rate, and backpressure rejections. With -json it
// writes the run as a BENCH_*_serving.json snapshot.
//
// Usage:
//
//	mcfi-load -addr http://127.0.0.1:8377 -c 8 -n 36
//	mcfi-load -workloads qsort,matmul -work 500 -json BENCH_serving.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mcfi/internal/server"
	"mcfi/internal/vm"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8377", "base URL of the mcfi-serve instance")
	concurrency := flag.Int("c", 8, "in-flight requests")
	requests := flag.Int("n", 0, "total jobs to run (0 = 3 per workload)")
	workloads := flag.String("workloads", "", "comma-separated workload names (default: all)")
	work := flag.Int("work", 0, "override workload iteration count (0 = reference inputs)")
	testWork := flag.Bool("test-work", false, "use each workload's reduced test scale")
	engine := vm.EngineThreaded
	flag.Var((*vm.EngineFlag)(&engine), "engine", vm.EngineUsage())
	baseline := flag.Bool("baseline", false, "run uninstrumented baselines instead of MCFI builds")
	maxInstr := flag.Int64("max-instr", 0, "per-job instruction budget (0 = server default)")
	timeoutMs := flag.Int64("timeout-ms", 0, "per-job wall-clock limit in ms (0 = server default)")
	jsonPath := flag.String("json", "", "write the LoadReport snapshot to this file")
	flag.Parse()

	cfg := server.LoadConfig{
		BaseURL:     strings.TrimRight(*addr, "/"),
		Concurrency: *concurrency,
		Requests:    *requests,
		Work:        *work,
		UseTestWork: *testWork,
		Engine:      engine.String(),
		Baseline:    *baseline,
		MaxInstr:    *maxInstr,
		TimeoutMs:   *timeoutMs,
	}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.Workloads = append(cfg.Workloads, w)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	rep, err := server.RunLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfi-load:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())

	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load: marshal report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote serving snapshot to %s\n", *jsonPath)
	}

	if bad := rep.Requests - int(rep.Statuses[server.StatusOK]); bad > 0 {
		fmt.Fprintf(os.Stderr, "mcfi-load: %d of %d jobs did not complete ok\n", bad, rep.Requests)
		os.Exit(1)
	}
}
