// mcfi-load drives one mcfi-serve instance — or a replica set — with a
// mixed corpus at a fixed concurrency and reports serving throughput:
// jobs/s, aggregate guest Minstr/s (end-to-end and execution-only),
// build-cache hit rate, backpressure rejections, and per-tenant /
// per-replica breakdowns. With -json it writes the run as a
// BENCH_*_serving.json snapshot; with -bench-json it appends
// mcfi-bench-compatible records so the run can be gated by
// `mcfi-bench -diff`.
//
// Usage:
//
//	mcfi-load -addr http://127.0.0.1:8377 -c 8 -n 36
//	mcfi-load -addrs http://h1:8481,http://h2:8482 -tenants a,b,c -n 10000 -distinct 48
//	mcfi-load -workloads qsort,matmul -work 500 -json BENCH_serving.json
//	mcfi-load -distinct 48 -batch 16 -bench-json BENCH_cluster.json -bench-label replicas=3
//	mcfi-load -job-mix run=4,dlopen=1,jitsim=1 -n 60  # mixed kinds, per-kind latency
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mcfi/internal/experiments"
	"mcfi/internal/server"
	"mcfi/internal/vm"
)

// parseJobMix parses "run=4,dlopen=1,jitsim=1" (kind names without a
// weight count as weight 1); RunLoad validates the kind names.
func parseJobMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		kind, wstr, ok := strings.Cut(p, "=")
		w := 1
		if ok {
			n, err := strconv.Atoi(strings.TrimSpace(wstr))
			if err != nil {
				return nil, fmt.Errorf("bad -job-mix entry %q: %v", p, err)
			}
			w = n
		}
		mix[strings.TrimSpace(kind)] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty -job-mix")
	}
	return mix, nil
}

func parseList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8377", "base URL of one mcfi-serve instance")
	addrs := flag.String("addrs", "", "comma-separated replica base URLs (overrides -addr; submissions round-robin)")
	concurrency := flag.Int("c", 8, "in-flight requests")
	requests := flag.Int("n", 0, "total jobs to run (0 = 3 per workload/source)")
	tenants := flag.String("tenants", "", "comma-separated tenant names to cycle jobs across")
	workloads := flag.String("workloads", "", "comma-separated workload names (default: all)")
	distinct := flag.Int("distinct", 0, "use a synthetic corpus of this many distinct sources instead of named workloads")
	synthFuncs := flag.Int("synth-funcs", 0, "functions per synthetic source (0 = 256)")
	batch := flag.Int("batch", 0, "submit via POST /v1/batch in groups of this size (0/1 = per-job POST /v1/run)")
	jobMix := flag.String("job-mix", "", "weighted job-kind mix, e.g. run=4,dlopen=1,jitsim=1 (per-kind latency reported)")
	work := flag.Int("work", 0, "override workload iteration count (0 = reference inputs)")
	testWork := flag.Bool("test-work", false, "use each workload's reduced test scale")
	engine := vm.EngineThreaded
	flag.Var((*vm.EngineFlag)(&engine), "engine", vm.EngineUsage())
	baseline := flag.Bool("baseline", false, "run uninstrumented baselines instead of MCFI builds")
	maxInstr := flag.Int64("max-instr", 0, "per-job instruction budget (0 = server default)")
	timeoutMs := flag.Int64("timeout-ms", 0, "per-job wall-clock limit in ms (0 = server default)")
	jsonPath := flag.String("json", "", "write the LoadReport snapshot to this file")
	benchJSON := flag.String("bench-json", "", "append an mcfi-bench BenchRecord for this run to this snapshot file")
	benchLabel := flag.String("bench-label", "", "benchmark label for the -bench-json record (e.g. replicas=3)")
	flag.Parse()

	cfg := server.LoadConfig{
		BaseURL:        strings.TrimRight(*addr, "/"),
		Addrs:          parseList(*addrs),
		Concurrency:    *concurrency,
		Requests:       *requests,
		Tenants:        parseList(*tenants),
		Distinct:       *distinct,
		SyntheticFuncs: *synthFuncs,
		Batch:          *batch,
		Work:           *work,
		UseTestWork:    *testWork,
		Engine:         engine.String(),
		Baseline:       *baseline,
		MaxInstr:       *maxInstr,
		TimeoutMs:      *timeoutMs,
	}
	if len(cfg.Addrs) > 0 {
		cfg.BaseURL = "" // -addrs replaces -addr entirely
	}
	if *workloads != "" {
		cfg.Workloads = parseList(*workloads)
	}
	if *jobMix != "" {
		mix, err := parseJobMix(*jobMix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load:", err)
			os.Exit(2)
		}
		cfg.JobMix = mix
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	rep, err := server.RunLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfi-load:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())

	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load: marshal report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote serving snapshot to %s\n", *jsonPath)
	}

	if *benchJSON != "" {
		if err := appendBenchRecord(*benchJSON, *benchLabel, rep); err != nil {
			fmt.Fprintln(os.Stderr, "mcfi-load:", err)
			os.Exit(1)
		}
		fmt.Printf("appended bench record %q to %s\n", *benchLabel, *benchJSON)
	}

	if bad := rep.Requests - int(rep.Statuses[server.StatusOK]); bad > 0 {
		fmt.Fprintf(os.Stderr, "mcfi-load: %d of %d jobs did not complete ok\n", bad, rep.Requests)
		os.Exit(1)
	}
}

// appendBenchRecord folds this run into an mcfi-bench snapshot so the
// serving-cluster scaling curve can be gated by `mcfi-bench -diff`.
// MinstrPerSec carries jobs/s (the quantity the cluster experiment
// scales); StoreHits/StoreBuilds carry the corpus hit/build split.
func appendBenchRecord(path, label string, rep *server.LoadReport) error {
	if label == "" {
		label = fmt.Sprintf("replicas=%d", len(rep.Addrs))
	}
	var recs []experiments.BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
	}
	rec := experiments.BenchRecord{
		Experiment:   "serving_cluster",
		Benchmark:    label,
		Engine:       rep.Engine,
		Profile:      "serve",
		Instrumented: true,
		WallSecs:     rep.WallSecs,
		Instret:      rep.GuestInstret,
		MinstrPerSec: rep.JobsPerSec,
		StoreHits:    rep.StoreTiers,
		StoreBuilds:  rep.StoreTiers["built"],
	}
	if len(rep.TenantLoads) > 0 {
		rec.TenantLatMs = make(map[string][3]float64, len(rep.TenantLoads))
		for _, t := range rep.TenantLoads {
			rec.TenantLatMs[t.Tenant] = [3]float64{t.P50Ms, t.P95Ms, t.P99Ms}
		}
	}
	// Replace a same-key record from a prior run, else append.
	replaced := false
	for i := range recs {
		if recs[i].Key() == rec.Key() {
			recs[i] = rec
			replaced = true
		}
	}
	if !replaced {
		recs = append(recs, rec)
	}
	out, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
