// mcfi-serve runs the multi-tenant MCFI execution service: an HTTP
// daemon that builds submitted MiniC programs (or named workloads)
// through a tiered content-addressed build store and executes each job
// in an isolated MCFI runtime on an elastic worker pool, with per-job
// instruction budgets and wall-clock timeouts.
//
// Usage:
//
//	mcfi-serve -addr :8377 -workers 4 -queue 8 -store-dir /var/cache/mcfi
//	mcfi-serve -tenant-weights alice=4,bob=1 -workers-min 2 -workers-max 8
//	mcfi-serve -addr :8481 -self http://h1:8481 -peers http://h1:8481,http://h2:8482
//
// Endpoints (versioned under /v1/; the unversioned forms are aliases):
//
//	POST /v1/run        {"workload":"qsort","work":2000}  or  {"source":"int main..."}
//	                    or {"kind":"dlopen","work":8} / {"kind":"jitsim"} — synthesized
//	                    dynamic-linking guests that stress update transactions
//	POST /v1/batch      {"tenant":"a","jobs":[...]} — one round trip, atomic admission
//	GET  /v1/healthz    200 while serving, 503 once draining; JSON self-ID body
//	GET  /v1/metrics    JSON counters: jobs, queue, tenants, cluster, build store
//	GET  /v1/metrics?format=prom  the same snapshot in Prometheus text format
//	GET  /v1/trace/{id} one sampled job's span set (see -trace-sample)
//	GET  /v1/audit      recent CFI-violation audit records (see -audit-log)
//	GET  /v1/store/{k}  sealed artifact blobs (also HEAD/PUT) — replica sharing
//
// Admission runs through a per-tenant deficit-weighted round-robin
// scheduler: -tenant-weights sets service shares, and the
// -tenant-max-* flags bound what any one tenant may have queued or in
// flight (exceeding a bound is a scoped 429 with a Retry-After derived
// from the observed drain rate). With -workers-min/-workers-max the
// pool autoscales against p95 queue latency (-autoscale-target).
//
// With -peers (and -self), replicas route jobs by build fingerprint
// over a consistent-hash ring: each replica serves its own shard of
// the program space and proxies the rest a single hop to the owner,
// falling back to local execution when the owner is down or draining.
//
// With -store-dir, compiled images and per-flavor libc objects persist
// across restarts (a warm restart recompiles nothing), and the
// directory may be shared by concurrent replicas. With -store-remote,
// a peer's /v1/store endpoint is consulted before building and fresh
// builds are published back to it. Replica sharing is write-gated by
// -store-secret (or $MCFI_STORE_SECRET), a shared cluster secret that
// HMAC-binds each published blob to its key; without it the store
// surface refuses all PUTs and nothing is published to the peer, so an
// exposed port cannot be used to poison the cache with a hostile
// artifact.
//
// Observability: every job is assigned a trace ID at ingress
// (propagated across replica hops in X-Mcfi-Trace) and, when sampled
// by -trace-sample, its admission/queue/build/run spans are
// retrievable at /v1/trace/{id}. Every CFI violation emits an audit
// record — tenant, build fingerprint, faulting PC, refused branch
// target, check kind — kept in a bounded ring at /v1/audit and
// optionally appended as NDJSON to -audit-log. -pprof-addr serves
// net/http/pprof on a separate listener so profiling is never exposed
// on the job port.
//
// On SIGTERM/SIGINT the server stops admitting jobs, finishes the
// queue within -drain-grace, force-cancels whatever is still running,
// and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mcfi/internal/cluster"
	"mcfi/internal/server"
)

// parseWeights parses "a=4,b=2" into tenant weights.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tenant weight %q: want name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant weight %q: weight must be a positive integer", part)
		}
		out[strings.TrimSpace(name)] = w
	}
	return out, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func parseList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 0, "execution pool width (0 = default 4)")
	workersMin := flag.Int("workers-min", 0, "autoscaler floor (0 = fixed pool of -workers)")
	workersMax := flag.Int("workers-max", 0, "autoscaler ceiling (0 = fixed pool)")
	autoscaleTarget := flag.Duration("autoscale-target", 0, "p95 queue-latency target the autoscaler defends (0 = 100ms)")
	queueDepth := flag.Int("queue", 0, "admission queue depth across all tenants (0 = 2x workers)")
	tenantWeights := flag.String("tenant-weights", "", "per-tenant DWRR weights, e.g. alice=4,bob=1 (unlisted tenants weigh 1)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "per-tenant queued-job quota (0 = unlimited)")
	tenantMaxInflight := flag.Int("tenant-max-inflight", 0, "per-tenant queued+running quota (0 = unlimited)")
	tenantInstrQuota := flag.Int64("tenant-instr-quota", 0, "per-tenant in-flight instruction-budget quota (0 = unlimited)")
	peers := flag.String("peers", "", "comma-separated replica base URLs for fingerprint routing (include this replica)")
	self := flag.String("self", "", "this replica's own base URL as peers reach it (required with -peers)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per replica (0 = 96)")
	maxInstr := flag.Int64("max-instr", 0, "default per-job instruction budget (0 = 2e9)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock limit (0 = 60s)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory store tier capacity in images (0 = 256)")
	storeDir := flag.String("store-dir", "", "persistent build-store directory (empty = in-memory only)")
	storeRemote := flag.String("store-remote", "", "base URL of a peer build store to fetch from and publish to")
	storeSecret := flag.String("store-secret", os.Getenv("MCFI_STORE_SECRET"),
		"shared secret authenticating /v1/store writes (empty = store surface is read-only; default $MCFI_STORE_SECRET)")
	buildJobs := flag.Int("build-jobs", 0, "compile concurrency per build (0 = 1)")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of jobs traced end to end (0 disables tracing)")
	traceBuffer := flag.Int("trace-buffer", 0, "traces retained in memory (0 = 1024)")
	auditLog := flag.String("audit-log", "", "append every CFI-violation audit record as NDJSON to this file")
	auditBuffer := flag.Int("audit-buffer", 0, "audit records retained in memory (0 = 1024)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "time queued jobs get to finish on shutdown")
	flag.Parse()

	log.SetPrefix("mcfi-serve: ")
	log.SetFlags(log.LstdFlags)

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		log.Fatal(err)
	}

	// Config treats 0 as "default on" — the flag's 0 means "off".
	sample := *traceSample
	if sample <= 0 {
		sample = -1
	}
	var auditSink io.Writer // stays a true nil interface when unset
	if *auditLog != "" {
		f, ferr := os.OpenFile(*auditLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			log.Fatalf("audit log: %v", ferr)
		}
		defer f.Close()
		auditSink = f
	}

	s, err := server.New(server.Config{
		Workers:         *workers,
		WorkersMin:      *workersMin,
		WorkersMax:      *workersMax,
		AutoscaleTarget: *autoscaleTarget,
		QueueDepth:      *queueDepth,
		TenantWeights:   weights,
		TenantQuota: cluster.Quota{
			MaxQueued:        *tenantMaxQueued,
			MaxInFlight:      *tenantMaxInflight,
			MaxInstrInFlight: *tenantInstrQuota,
		},
		Peers:           parseList(*peers),
		Self:            *self,
		VNodes:          *vnodes,
		CacheEntries:    *cacheEntries,
		StoreDir:        *storeDir,
		RemoteStore:     *storeRemote,
		StoreSecret:     *storeSecret,
		DefaultMaxInstr: *maxInstr,
		DefaultTimeout:  *timeout,
		BuildJobs:       *buildJobs,
		TraceSample:     sample,
		TraceBuffer:     *traceBuffer,
		AuditBuffer:     *auditBuffer,
		AuditSink:       auditSink,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		st := s.Store().Metrics()
		for _, tier := range st.Tiers {
			if tier.Tier == "disk" {
				log.Printf("build store: %s (%d artifacts, %d KiB)", *storeDir, tier.Entries, tier.Bytes/1024)
			}
		}
	}
	if *peers != "" {
		log.Printf("cluster: self=%s peers=%s", *self, *peers)
	}
	if m := s.MetricsSnapshot().Autoscale; m != nil && m.Enabled {
		log.Printf("autoscale: %d..%d workers, p95 target %.0fms", m.Min, m.Max, m.TargetP95Ms)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener and an explicit mux: the job
		// port never exposes the profiling surface.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
		log.Printf("pprof on %s", *pprofAddr)
	}
	if sample > 0 {
		log.Printf("tracing: sample=%.3g, audit-log=%s", *traceSample, orDash(*auditLog))
	} else {
		log.Printf("tracing: off, audit-log=%s", orDash(*auditLog))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mcfi-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	log.Printf("shutdown: draining (grace %s)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	s.Drain(drainCtx) // rejects new jobs, finishes the queue, force-cancels on expiry
	cancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	m := s.MetricsSnapshot()
	log.Printf("drained: %d jobs completed, %d CFI violations, %.0f%% store hit rate (%d builds, %d libc compiles)",
		m.Jobs.Completed, m.Jobs.CFIViolations, 100*m.BuildStore.HitRate,
		m.BuildStore.Builds, m.BuildStore.ObjectBuilds)
}
