// mcfi-serve runs the multi-tenant MCFI execution service: an HTTP
// daemon that builds submitted MiniC programs (or named workloads)
// through a tiered content-addressed build store and executes each job
// in an isolated MCFI runtime on a bounded worker pool, with per-job
// instruction budgets and wall-clock timeouts.
//
// Usage:
//
//	mcfi-serve -addr :8377 -workers 4 -queue 8 -store-dir /var/cache/mcfi
//
// Endpoints (versioned under /v1/; the unversioned forms are aliases):
//
//	POST /v1/run        {"workload":"qsort","work":2000}  or  {"source":"int main..."}
//	GET  /v1/healthz    200 while serving, 503 once draining
//	GET  /v1/metrics    JSON counters: jobs, queue, build store, execution
//	GET  /v1/store/{k}  sealed artifact blobs (also HEAD/PUT) — replica sharing
//
// With -store-dir, compiled images and per-flavor libc objects persist
// across restarts (a warm restart recompiles nothing), and the
// directory may be shared by concurrent replicas. With -store-remote,
// a peer's /v1/store endpoint is consulted before building and fresh
// builds are published back to it. Replica sharing is write-gated by
// -store-secret (or $MCFI_STORE_SECRET), a shared cluster secret that
// HMAC-binds each published blob to its key; without it the store
// surface refuses all PUTs and nothing is published to the peer, so an
// exposed port cannot be used to poison the cache with a hostile
// artifact.
//
// On SIGTERM/SIGINT the server stops admitting jobs, finishes the
// queue within -drain-grace, force-cancels whatever is still running,
// and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcfi/internal/server"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 0, "execution pool width (0 = default 4)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	maxInstr := flag.Int64("max-instr", 0, "default per-job instruction budget (0 = 2e9)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock limit (0 = 60s)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory store tier capacity in images (0 = 256)")
	storeDir := flag.String("store-dir", "", "persistent build-store directory (empty = in-memory only)")
	storeRemote := flag.String("store-remote", "", "base URL of a peer build store to fetch from and publish to")
	storeSecret := flag.String("store-secret", os.Getenv("MCFI_STORE_SECRET"),
		"shared secret authenticating /v1/store writes (empty = store surface is read-only; default $MCFI_STORE_SECRET)")
	buildJobs := flag.Int("build-jobs", 0, "compile concurrency per build (0 = 1)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "time queued jobs get to finish on shutdown")
	flag.Parse()

	log.SetPrefix("mcfi-serve: ")
	log.SetFlags(log.LstdFlags)

	s, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		StoreDir:        *storeDir,
		RemoteStore:     *storeRemote,
		StoreSecret:     *storeSecret,
		DefaultMaxInstr: *maxInstr,
		DefaultTimeout:  *timeout,
		BuildJobs:       *buildJobs,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		st := s.Store().Metrics()
		for _, tier := range st.Tiers {
			if tier.Tier == "disk" {
				log.Printf("build store: %s (%d artifacts, %d KiB)", *storeDir, tier.Entries, tier.Bytes/1024)
			}
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mcfi-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	log.Printf("shutdown: draining (grace %s)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	s.Drain(drainCtx) // rejects new jobs, finishes the queue, force-cancels on expiry
	cancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	m := s.MetricsSnapshot()
	log.Printf("drained: %d jobs completed, %d CFI violations, %.0f%% store hit rate (%d builds, %d libc compiles)",
		m.Jobs.Completed, m.Jobs.CFIViolations, 100*m.BuildStore.HitRate,
		m.BuildStore.Builds, m.BuildStore.ObjectBuilds)
}
