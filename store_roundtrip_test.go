// Differential test of the build store's on-disk format: an image
// that round-trips through the content-addressed store (binary
// encoding + sealed blob envelope + disk publish/fetch) must be
// observationally identical to the freshly linked original under
// every execution engine — same exit code, output, and bit-identical
// retired-instruction count, and for a CFI-violating program the same
// fault with the same partial output.
package mcfi

import (
	"errors"
	"fmt"
	"testing"

	"mcfi/internal/buildstore"
	"mcfi/internal/linker"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// storeRoundTrip publishes img into a fresh disk store and fetches it
// back, so the copy has passed through the full at-rest format.
func storeRoundTrip(t *testing.T, img *linker.Image) *linker.Image {
	t.Helper()
	d, err := buildstore.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	key := buildstore.HashKey("roundtrip|" + t.Name())
	if err := d.Put(key, img); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStoreRoundTripEnginesIdentical runs a workload from both the
// original and the store-served image under every engine.
func TestStoreRoundTripEnginesIdentical(t *testing.T) {
	w, ok := workload.ByName("bzip2")
	if !ok {
		t.Fatal("bzip2 workload missing")
	}
	for _, profile := range []visa.Profile{visa.Profile64, visa.Profile32} {
		for _, instr := range []bool{false, true} {
			img, err := toolchain.New(
				toolchain.WithProfile(profile),
				toolchain.WithInstrument(instr),
			).Build(w.TestSource())
			if err != nil {
				t.Fatalf("%s instr=%v: build: %v", profile, instr, err)
			}
			stored := storeRoundTrip(t, img)
			for _, e := range vm.Engines() {
				orig := runWithEngine(t, img, e)
				copy := runWithEngine(t, stored, e)
				if orig != copy {
					t.Errorf("%s instr=%v engine %s: store round-trip diverges:\n  original: code=%d instret=%d out=%q\n  stored:   code=%d instret=%d out=%q",
						profile, instr, e,
						orig.code, orig.instret, orig.output,
						copy.code, copy.instret, copy.output)
				}
			}
		}
	}
}

// TestStoreRoundTripPreservesCFIFaults: a store-served image must
// still halt an attack identically — same fault kind, same retired
// count at the fault, same partial output — under every engine.
func TestStoreRoundTripPreservesCFIFaults(t *testing.T) {
	src := `
int evil_calls = 0;
void evil(void) { evil_calls = 1; }
void (*keep)(void) = evil;

long victim(long target) {
	long x = 0;
	long *p = &x;
	p[2] = target;
	return x;
}
int main(void) {
	puts("before");
	victim((long)evil);
	puts("survived");
	return 0;
}`
	img, err := toolchain.New(toolchain.WithInstrumentation()).
		Build(toolchain.Source{Name: "attack", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	stored := storeRoundTrip(t, img)

	type faultRun struct {
		kind    vm.FaultKind
		output  string
		instret int64
	}
	run := func(img *linker.Image, e vm.Engine) faultRun {
		rt, err := mrt.New(img, mrt.Options{Engine: e})
		if err != nil {
			t.Fatalf("engine %s: %v", e, err)
		}
		_, err = rt.Run(50_000_000)
		var f *vm.Fault
		if !errors.As(err, &f) || f.Kind != vm.FaultCFI {
			t.Fatalf("engine %s: want CFI fault, got %v (out %q)", e, err, rt.Output())
		}
		return faultRun{kind: f.Kind, output: rt.Output(), instret: rt.Instret()}
	}
	for _, e := range vm.Engines() {
		orig := run(img, e)
		copy := run(stored, e)
		if orig != copy {
			t.Errorf("engine %s: fault behavior diverges after round-trip:\n  original: %+v\n  stored:   %+v", e, orig, copy)
		}
		if orig.output != "before\n" {
			t.Errorf("engine %s: partial output %q, want %q", e, orig.output, "before\n")
		}
	}
}

// TestStoreRoundTripIsByteStable: encode → store → fetch → encode is
// the identity on bytes, for several distinct images.
func TestStoreRoundTripIsByteStable(t *testing.T) {
	for i, instr := range []bool{false, true} {
		img, err := toolchain.New(toolchain.WithInstrument(instr)).
			Build(toolchain.Source{Name: "p", Text: fmt.Sprintf(
				`int main(void){ printf("%%d\n", %d); return 0; }`, i)})
		if err != nil {
			t.Fatal(err)
		}
		a, err := img.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b, err := storeRoundTrip(t, img).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("instr=%v: image bytes unstable across the store", instr)
		}
	}
}
