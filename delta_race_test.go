// Tests for the delta update-transaction path (incremental CFG merge
// + tables.UpdateDelta): a dlopen storm publishes per-module deltas
// while 64 host-side checker goroutines race the tables under the
// version-compare retry protocol, and the resulting policy is checked
// verdict-for-verdict against the full-rebuild baseline. Run with
// `go test -race` this exercises the §5.2 concurrency claim at scale:
// partial publication must never produce a spurious violation or an
// unbounded retry loop, and execution must stay bit-identical across
// every engine and both publication strategies.
package mcfi

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mcfi/internal/id"
	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

const deltaPlugins = 8

// deltaWorkload builds a host program that dlopens deltaPlugins
// libraries one by one, resolves a function from each, and hammers it
// through a checked function pointer — the dlopen-storm guest.
func deltaWorkload(t *testing.T) (*linker.Image, []*module.Object) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("int main(void) {\n\tlong acc = 0;\n")
	for i := 0; i < deltaPlugins; i++ {
		fmt.Fprintf(&sb, `
	long h%d = dlopen("p%d");
	if (h%d == 0) return %d;
	long a%d = dlsym(h%d, "p%d_fn");
	if (a%d == 0) return %d;
	long (*f%d)(long) = (long (*)(long))a%d;
	for (int i%d = 0; i%d < 400; i%d++) acc += f%d(i%d);
`, i, i, i, 10+i, i, i, i, i, 20+i, i, i, i, i, i, i, i)
	}
	sb.WriteString("\tprintf(\"%ld\\n\", acc);\n\treturn 0;\n}\n")

	b := toolchain.New(toolchain.WithProfile(visa.Profile64), toolchain.WithInstrumentation())
	img, err := b.Build(toolchain.Source{Name: "deltahost", Text: sb.String()})
	if err != nil {
		t.Fatal(err)
	}
	var plugins []*module.Object
	for i := 0; i < deltaPlugins; i++ {
		src := fmt.Sprintf(`
long p%d_state = %d;
long p%d_fn(long x) { return x * p%d_state + %d; }
long p%d_aux(long x) { return x - %d; }
`, i, i+3, i, i, i, i, i)
		obj, err := b.Compile(toolchain.Source{Name: fmt.Sprintf("p%d", i), Text: src})
		if err != nil {
			t.Fatal(err)
		}
		plugins = append(plugins, obj)
	}
	return img, plugins
}

func runDelta(t *testing.T, img *linker.Image, plugins []*module.Object, opts mrt.Options) (*mrt.Runtime, engineRun) {
	t.Helper()
	rt, err := mrt.New(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plugins {
		rt.RegisterLibrary(p)
	}
	code, err := rt.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("run (opts %+v): %v (output %q)", opts, err, rt.Output())
	}
	return rt, engineRun{code: code, output: rt.Output(), instret: rt.Instret()}
}

// TestDeltaPathBitIdenticalToFullRebuild: the same dlopen storm run
// through delta publication and through the ForceFullCFG baseline must
// be bit-identical (code, output, instret) on every engine, and the
// delta runtime must actually have taken the delta path.
func TestDeltaPathBitIdenticalToFullRebuild(t *testing.T) {
	img, plugins := deltaWorkload(t)

	_, ref := runDelta(t, img, plugins, mrt.Options{Engine: vm.EngineInterp, ForceFullCFG: true})
	if ref.code != 0 {
		t.Fatalf("reference run exited %d (output %q)", ref.code, ref.output)
	}
	for _, e := range vm.Engines() {
		rt, got := runDelta(t, img, plugins, mrt.Options{Engine: e})
		if got != ref {
			t.Errorf("engine %s delta path diverges from full-rebuild interp:\n  ref: %+v\n  got: %+v", e, ref, got)
		}
		delta, full := rt.PublishStats()
		// Every dlopen and every first dlsym of a not-yet-taken
		// function should publish incrementally; only the initial
		// policy is a full build.
		if delta < deltaPlugins {
			t.Errorf("engine %s: only %d delta publications (want >= %d); %d full", e, delta, deltaPlugins, full)
		}
		if full != 1 {
			t.Errorf("engine %s: %d full publications, want 1 (the initial policy)", e, full)
		}
	}

	// The baseline knob really disables the delta path.
	rtFull, _ := runDelta(t, img, plugins, mrt.Options{ForceFullCFG: true})
	d, f := rtFull.PublishStats()
	if d != 0 || f < deltaPlugins {
		t.Errorf("ForceFullCFG run published %d deltas / %d full, want 0 / >= %d", d, f, deltaPlugins)
	}
}

// TestDeltaVerdictsMatchFullRebuild compares the published policies
// verdict-for-verdict: after the storm, every (branch, target) pair
// must get the same Pass/Violation answer from the delta-built tables
// and the full-rebuilt tables, even though their ECN numbering and
// version words differ.
func TestDeltaVerdictsMatchFullRebuild(t *testing.T) {
	img, plugins := deltaWorkload(t)
	rtD, _ := runDelta(t, img, plugins, mrt.Options{})
	rtF, _ := runDelta(t, img, plugins, mrt.Options{ForceFullCFG: true})

	taryD, baryD := rtD.Tables.Snapshot()
	taryF, baryF := rtF.Tables.Snapshot()

	var targets []int
	for w := range taryD {
		dv, fv := id.ID(taryD[w]).Valid(), id.ID(taryF[w]).Valid()
		if dv != fv {
			t.Fatalf("target validity diverges at %#x: delta %v, full %v", w*4, dv, fv)
		}
		if dv {
			targets = append(targets, w*4)
		}
	}
	var branches []int
	for i := range baryD {
		dv, fv := id.ID(baryD[i]).Valid(), id.ID(baryF[i]).Valid()
		if dv != fv {
			t.Fatalf("branch validity diverges at index %d: delta %v, full %v", i, dv, fv)
		}
		if dv {
			branches = append(branches, i)
		}
	}
	if len(targets) == 0 || len(branches) == 0 {
		t.Fatalf("empty policy: %d targets, %d branches", len(targets), len(branches))
	}
	mismatches := 0
	for _, b := range branches {
		for _, a := range targets {
			got := rtD.Tables.Check(b, a)
			want := rtF.Tables.Check(b, a)
			if got != want {
				mismatches++
				if mismatches <= 10 {
					t.Errorf("verdict diverges: branch %d target %#x: delta %v, full %v", b, a, got, want)
				}
			}
		}
	}
	if mismatches > 0 {
		t.Errorf("%d of %d verdicts diverge", mismatches, len(branches)*len(targets))
	}
	t.Logf("compared %d branches x %d targets", len(branches), len(targets))
}

// TestHostCheckersRaceDeltaStorm is the §5.2 concurrency claim at
// scale: 64 host-side Check loops spin on known-valid (branch, target)
// pairs while the guest performs its dlopen storm (delta update
// transactions) and a host goroutine layers Reversion transactions on
// top. The incremental path never moves a published target to a
// different class and publishes deltas version-neutrally, so no
// checker may ever observe a spurious violation, and the retry
// protocol must stay bounded (a livelock would hang the test; a retry
// explosion trips the bound below).
func TestHostCheckersRaceDeltaStorm(t *testing.T) {
	img, plugins := deltaWorkload(t)
	rt, err := mrt.New(img, mrt.Options{ParallelCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plugins {
		rt.RegisterLibrary(p)
	}

	// Harvest valid (branch index, target) pairs from the initial
	// policy: a Bary word with a matching Tary word is a pair that
	// stays legal forever (deltas never re-class published targets).
	tary, bary := rt.Tables.Snapshot()
	type pair struct{ idx, target int }
	var pairs []pair
	for i, bw := range bary {
		if !id.ID(bw).Valid() {
			continue
		}
		for w, tw := range tary {
			if tw == bw {
				pairs = append(pairs, pair{idx: i, target: w * 4})
				break
			}
		}
		if len(pairs) >= 16 {
			break
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no valid (branch, target) pairs in the initial policy")
	}

	const checkers = 64
	var (
		violations atomic.Int64
		checks     atomic.Int64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
	)
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, pr := range pairs {
					if rt.Tables.Check(pr.idx, pr.target) != tables.Pass {
						violations.Add(1)
					}
					checks.Add(1)
				}
			}
		}()
	}
	// Reversion storm on top of the dlopen storm, throttled so the ABA
	// guard never refuses the guest's dlopens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rt.Tables.UpdatesSinceQuiescence() < 512 {
				rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
			}
		}
	}()

	code, err := rt.Run(2_000_000_000)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("guest under checker storm: %v (output %q)", err, rt.Output())
	}
	if code != 0 {
		t.Fatalf("guest exited %d (output %q)", code, rt.Output())
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d spurious violations out of %d host checks", v, checks.Load())
	}
	delta, full := rt.PublishStats()
	if delta < deltaPlugins {
		t.Errorf("storm took the full path: %d delta / %d full publications", delta, full)
	}
	// Retries are scheduling-dependent — a checker legitimately spins
	// for as long as an update transaction is in flight — but they must
	// stay bounded by the work done: version-consistent publication
	// means a check parks only while a publisher holds the lock, so
	// retry volume below check volume. Version-skewed IDs (the failure
	// the version-neutral delta design prevents) would retry forever
	// and dwarf the check count long before the test timed out.
	updates := rt.Tables.Updates()
	if r, c := rt.Tables.Retries(), checks.Load(); r > c {
		t.Errorf("retry explosion: %d retries exceed %d completed checks (%d updates)", r, c, updates)
	}
	t.Logf("storm: %d checks, %d updates (%d delta), %d retries",
		checks.Load(), updates, delta, rt.Tables.Retries())
}
